// Equivalence suite for the batched Theorem-1 kernel: pins the kernel and
// the fused batch_* free functions to the scalar reference implementations.
//
// Two tolerance tiers, matching the contracts in
// src/core/success_probability_batch.hpp:
//  * The fused batch_* aggregates are BIT-IDENTICAL to the scalar loops
//    (same expression, same iteration order) — tested with EXPECT_EQ.
//  * The kernel's division-free matrix form differs from the scalar
//    division form only in per-factor rounding — tested at ulp scale
//    (relative 1e-12 over products of up to ~500 factors).
//
// The incremental path has its own bitwise pin: a chain of update_link
// calls must reproduce a from-scratch set_probabilities exactly, because
// the coordinate-ascent consumer relies on hill-climbing decisions not
// drifting with the update history.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/batch_executor.hpp"
#include "test_helpers.hpp"

namespace raysched::core {
namespace {

using model::LinkId;
using raysched::testing::hand_matrix_network;
using raysched::testing::paper_network;

/// ulp-scale comparison for the matrix-vs-division forms: relative 1e-12
/// with an absolute floor for values that are legitimately ~0.
void expect_ulp_close(double actual, double reference, const char* what,
                      std::size_t i) {
  EXPECT_NEAR(actual, reference, std::abs(reference) * 1e-12 + 1e-300)
      << what << " diverged from scalar at link " << i;
}

/// Random probability profile with degenerate entries forced in: q[0] = 0,
/// q[1] = 1, rest uniform. Exercises the q=0 skip and the q=1 full factor.
std::vector<double> random_profile(std::size_t n, std::uint64_t seed) {
  util::RngStream rng(seed);
  std::vector<double> q(n);
  for (auto& v : q) v = rng.uniform();
  if (n > 0) q[0] = 0.0;
  if (n > 1) q[1] = 1.0;
  return q;
}

// ---------------------------------------------------------------------------
// One-shot kernel vs scalar Theorem 1.
// ---------------------------------------------------------------------------

TEST(SuccessBatch, KernelMatchesScalarOnHandNetwork) {
  auto net = hand_matrix_network(0.1);
  const units::Threshold beta(1.2);
  const auto q = units::probabilities({0.8, 0.5, 0.3});
  SuccessProbabilityKernel kernel(net, beta);
  ASSERT_EQ(kernel.size(), 3u);
  EXPECT_DOUBLE_EQ(kernel.beta().value(), 1.2);
  const std::vector<double> out = kernel.evaluate(q);
  ASSERT_EQ(out.size(), 3u);
  for (LinkId i = 0; i < 3; ++i) {
    expect_ulp_close(out[i],
                     rayleigh_success_probability(net, q, i, beta).value(),
                     "evaluate", i);
  }
}

TEST(SuccessBatch, KernelMatchesScalarOnRandomInstances) {
  // Non-power-of-two and larger sizes, degenerate entries included.
  for (const std::size_t n : {std::size_t{17}, std::size_t{64}}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      auto net = paper_network(n, seed);
      const units::Threshold beta(2.5);
      const auto q = units::probabilities(random_profile(n, seed ^ 0xBEEF));
      SuccessProbabilityKernel kernel(net, beta);
      const std::vector<double> out = kernel.evaluate(q);
      ASSERT_EQ(out.size(), n);
      EXPECT_EQ(out[0], 0.0);  // q[0] == 0 must yield an exact zero
      for (LinkId i = 0; i < n; ++i) {
        expect_ulp_close(out[i],
                         rayleigh_success_probability(net, q, i, beta).value(),
                         "evaluate", i);
      }
    }
  }
}

TEST(SuccessBatch, ZeroCrossGainReducesToNoiseFactor) {
  // With zero off-diagonal gains every interference factor is exactly 1 and
  // both forms collapse to q_i * exp(-beta*nu/S(i,i)).
  const std::vector<double> gains = {
      4.0, 0.0, 0.0,  //
      0.0, 2.0, 0.0,  //
      0.0, 0.0, 1.0,  //
  };
  model::Network net(3, gains, units::Power(0.5));
  const units::Threshold beta(2.0);
  const auto q = units::probabilities({0.7, 1.0, 0.0});
  SuccessProbabilityKernel kernel(net, beta);
  const std::vector<double> out = kernel.evaluate(q);
  EXPECT_DOUBLE_EQ(out[0], 0.7 * std::exp(-2.0 * 0.5 / 4.0));
  EXPECT_DOUBLE_EQ(out[1], std::exp(-2.0 * 0.5 / 2.0));
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  for (LinkId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(out[i],
                     rayleigh_success_probability(net, q, i, beta).value());
    EXPECT_EQ(kernel.affectance(i, i), 0.0);
  }
  EXPECT_EQ(kernel.affectance(0, 1), 0.0);  // zero gain -> zero affectance
}

TEST(SuccessBatch, ConditionalStripsOwnProbability) {
  auto net = paper_network(12, 9);
  const units::Threshold beta(1.5);
  const auto q = units::probabilities(random_profile(12, 77));
  SuccessProbabilityKernel kernel(net, beta);
  std::vector<double> conditional;
  kernel.evaluate_conditional(q, conditional);
  ASSERT_EQ(conditional.size(), 12u);
  for (LinkId i = 0; i < 12; ++i) {
    // Reference: scalar Theorem 1 with q_i forced to 1 (certain transmit).
    std::vector<double> forced(q.size());
    for (std::size_t j = 0; j < q.size(); ++j) forced[j] = q[j].value();
    forced[i] = 1.0;
    expect_ulp_close(
        conditional[i],
        rayleigh_success_probability(net, units::probabilities(forced), i,
                                     beta)
            .value(),
        "evaluate_conditional", i);
  }
}

// ---------------------------------------------------------------------------
// Log-space evaluation.
// ---------------------------------------------------------------------------

TEST(SuccessBatch, LogSpaceMatchesPlainEvaluation) {
  auto net = paper_network(20, 5);
  const units::Threshold beta(2.5);
  const auto q = units::probabilities(random_profile(20, 123));
  SuccessProbabilityKernel kernel(net, beta);
  const std::vector<double> plain = kernel.evaluate(q);
  const std::vector<double> logs = kernel.evaluate_log(q);
  ASSERT_EQ(logs.size(), 20u);
  EXPECT_EQ(logs[0], -std::numeric_limits<double>::infinity());  // q[0] == 0
  for (LinkId i = 1; i < 20; ++i) {
    EXPECT_NEAR(logs[i], std::log(plain[i]), 1e-9) << "link " << i;
  }
}

TEST(SuccessBatch, LogSpaceSurvivesUnderflow) {
  // 500 links, each hammered by 499 interferers with cross-gain 1000x its
  // own signal: every per-link product underflows the plain double range
  // (Q_i ~ (1/2500)^499), but the log form stays finite and ordered.
  const std::size_t n = 500;
  std::vector<double> gains(n * n, 1000.0);
  for (std::size_t i = 0; i < n; ++i) gains[i * n + i] = 1.0;
  model::Network net(n, std::move(gains), units::Power(0.0));
  const units::Threshold beta(2.5);
  const auto q = units::probabilities(std::vector<double>(n, 1.0));
  SuccessProbabilityKernel kernel(net, beta);

  const std::vector<double> plain = kernel.evaluate(q);
  const std::vector<double> logs = kernel.evaluate_log(q);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(plain[i], 0.0) << "plain product should underflow at link " << i;
    EXPECT_TRUE(std::isfinite(logs[i])) << "log form underflowed at " << i;
    EXPECT_LT(logs[i], -700.0);  // well below log(DBL_MIN) ~ -708
  }
  // Analytic check: log Q = 499 * log1p(-2500/2501).
  const double expected = 499.0 * std::log1p(-2500.0 / 2501.0);
  EXPECT_NEAR(logs[0], expected, std::abs(expected) * 1e-12);
}

// ---------------------------------------------------------------------------
// Fused batch_* free functions: bit-identical to the scalar loops.
// ---------------------------------------------------------------------------

TEST(SuccessBatch, FusedBatchIsBitIdenticalToScalar) {
  auto net = paper_network(31, 4);
  const units::Threshold beta(2.5);
  const auto q = units::probabilities(random_profile(31, 0xFACE));
  const std::vector<double> batch =
      batch_rayleigh_success_probabilities(net, q, beta);
  ASSERT_EQ(batch.size(), 31u);
  double sum = 0.0;
  for (LinkId i = 0; i < 31; ++i) {
    // EXPECT_EQ on purpose: the fused path promises bitwise equality.
    EXPECT_EQ(batch[i], rayleigh_success_probability(net, q, i, beta).value())
        << "link " << i;
    sum += batch[i];
  }
  EXPECT_EQ(batch_expected_rayleigh_successes(net, q, beta), sum);
  EXPECT_EQ(expected_rayleigh_successes(net, q, beta), sum);
}

TEST(SuccessBatch, FusedActiveBatchIsBitIdenticalToScalar) {
  auto net = paper_network(25, 6);
  const units::Threshold beta(2.5);
  model::LinkSet active;
  for (LinkId i = 0; i < 25; i += 3) active.push_back(i);
  const std::vector<double> batch =
      batch_success_probabilities_active(net, active, beta);
  ASSERT_EQ(batch.size(), active.size());
  double sum = 0.0;
  for (std::size_t a = 0; a < active.size(); ++a) {
    EXPECT_EQ(
        batch[a],
        model::success_probability_rayleigh(net, active, active[a], beta)
            .value())
        << "active[" << a << "]";
    sum += batch[a];
  }
  EXPECT_EQ(batch_expected_successes_active(net, active, beta), sum);
  EXPECT_EQ(model::expected_successes_rayleigh(net, active, beta), sum);
}

TEST(SuccessBatch, ValidatesInput) {
  auto net = hand_matrix_network();
  EXPECT_THROW(
      SuccessProbabilityKernel(net, units::Threshold::checked(0.0)),
      raysched::error);
  SuccessProbabilityKernel kernel(net, units::Threshold(1.0));
  EXPECT_THROW(kernel.evaluate(units::probabilities({0.5, 0.5})),
               raysched::error);  // size mismatch
  EXPECT_THROW(
      batch_rayleigh_success_probabilities(net, units::probabilities({0.5}),
                                           units::Threshold(1.0)),
      raysched::error);
  EXPECT_THROW(batch_success_probabilities_active(net, {0, 9},
                                                  units::Threshold(1.0)),
               raysched::error);  // id out of range
}

// ---------------------------------------------------------------------------
// Incremental mode: update_link must match from-scratch bit-for-bit.
// ---------------------------------------------------------------------------

TEST(SuccessBatchIncremental, UpdateLinkMatchesFromScratchBitwise) {
  // Non-power-of-two size so the padded tree leaves are exercised.
  const std::size_t n = 33;
  auto net = paper_network(n, 21);
  const units::Threshold beta(2.5);
  std::vector<double> q = random_profile(n, 0xD1CE);

  SuccessProbabilityKernel incremental(net, beta);
  incremental.set_probabilities(units::probabilities(q));
  EXPECT_TRUE(incremental.has_state());

  util::RngStream rng(314);
  for (int step = 0; step < 40; ++step) {
    const auto id = static_cast<LinkId>(rng.uniform_index(n));
    // Mix interior values with exact 0 and 1 edges.
    const double v = step % 7 == 0 ? 0.0 : step % 5 == 0 ? 1.0 : rng.uniform();
    q[id] = v;
    incremental.update_link(id, units::Probability(v));

    SuccessProbabilityKernel fresh(net, beta);
    fresh.set_probabilities(units::probabilities(q));
    for (LinkId i = 0; i < n; ++i) {
      // Bitwise: the incremental contract is exact reproduction.
      EXPECT_EQ(incremental.success_probabilities()[i],
                fresh.success_probabilities()[i])
          << "step " << step << " link " << i;
    }
    EXPECT_EQ(incremental.expected_successes(), fresh.expected_successes())
        << "step " << step;
  }
  // The stored vector tracked every change.
  for (LinkId i = 0; i < n; ++i) {
    EXPECT_EQ(incremental.probabilities()[i].value(), q[i]);
  }
}

TEST(SuccessBatchIncremental, AgreesWithOneShotAndScalar) {
  auto net = paper_network(17, 8);
  const units::Threshold beta(1.5);
  const auto q = units::probabilities(random_profile(17, 99));
  SuccessProbabilityKernel kernel(net, beta);
  kernel.set_probabilities(q);
  const std::vector<double> oneshot = kernel.evaluate(q);
  for (LinkId i = 0; i < 17; ++i) {
    // Tree association order differs from the sequential product, so this
    // comparison is ulp-scale, not bitwise.
    expect_ulp_close(kernel.success_probabilities()[i], oneshot[i],
                     "incremental value", i);
    expect_ulp_close(kernel.success_probability(i).value(),
                     rayleigh_success_probability(net, q, i, beta).value(),
                     "incremental vs scalar", i);
  }
}

TEST(SuccessBatchIncremental, SetProbabilitiesIsRepeatable) {
  auto net = paper_network(9, 13);
  const units::Threshold beta(2.0);
  SuccessProbabilityKernel kernel(net, beta);
  kernel.set_probabilities(units::probabilities(random_profile(9, 1)));
  const auto q2 = units::probabilities(random_profile(9, 2));
  kernel.set_probabilities(q2);

  SuccessProbabilityKernel fresh(net, beta);
  fresh.set_probabilities(q2);
  for (LinkId i = 0; i < 9; ++i) {
    EXPECT_EQ(kernel.success_probabilities()[i],
              fresh.success_probabilities()[i]);
  }
}

TEST(SuccessBatchIncremental, GuardsItsPreconditions) {
  auto net = hand_matrix_network();
  SuccessProbabilityKernel kernel(net, units::Threshold(1.0));
  EXPECT_FALSE(kernel.has_state());
  EXPECT_THROW(kernel.update_link(0, units::Probability(0.5)),
               raysched::error);  // before set_probabilities
  EXPECT_THROW(kernel.success_probabilities(), raysched::error);
  EXPECT_THROW(kernel.expected_successes(), raysched::error);
  EXPECT_THROW(kernel.probabilities(), raysched::error);
  kernel.set_probabilities(units::probabilities({0.5, 0.5, 0.5}));
  EXPECT_THROW(kernel.update_link(9, units::Probability(0.5)),
               raysched::error);  // id out of range
  EXPECT_THROW(kernel.success_probability(9), raysched::error);
}

// ---------------------------------------------------------------------------
// Lifecycle under churn: batched updates, departures, reset. Everything is
// pinned bit-for-bit against sequential update_link and from-scratch
// set_probabilities — the incremental serving policy relies on it.
// ---------------------------------------------------------------------------

TEST(SuccessBatchLifecycle, BatchedUpdatesMatchSequentialBitwise) {
  const std::size_t n = 33;  // non-power-of-two: padded leaves exercised
  auto net = paper_network(n, 44);
  const units::Threshold beta(2.5);
  std::vector<double> q = random_profile(n, 0xABBA);

  SuccessProbabilityKernel batched(net, beta);
  SuccessProbabilityKernel sequential(net, beta);
  batched.set_probabilities(units::probabilities(q));
  sequential.set_probabilities(units::probabilities(q));

  util::RngStream rng(2718);
  for (int round = 0; round < 25; ++round) {
    // Batches of varying size, duplicate-free, mixing 0/1 edges with
    // interior values and adjacent leaf pairs (shared parents).
    std::vector<std::pair<LinkId, units::Probability>> updates;
    const std::size_t batch = 1 + rng.uniform_index(8);
    std::vector<char> used(n, 0);
    for (std::size_t k = 0; k < batch; ++k) {
      const auto id = static_cast<LinkId>(rng.uniform_index(n));
      if (used[id] != 0) continue;
      used[id] = 1;
      const double v =
          round % 6 == 0 ? 0.0 : round % 4 == 0 ? 1.0 : rng.uniform();
      updates.emplace_back(id, units::Probability(v));
    }
    batched.update_links(updates);
    for (const auto& [id, v] : updates) sequential.update_link(id, v);

    for (LinkId i = 0; i < n; ++i) {
      EXPECT_EQ(batched.success_probabilities()[i],
                sequential.success_probabilities()[i])
          << "round " << round << " link " << i;
    }
    EXPECT_EQ(batched.expected_successes(), sequential.expected_successes())
        << "round " << round;
  }
}

TEST(SuccessBatchLifecycle, ChurnInterleavingMatchesFromScratchBitwise) {
  // The serving-loop pattern: departures (remove_link), arrivals and
  // schedule flips (update_links), interleaved — always bit-for-bit equal
  // to a fresh kernel seeded with the final profile.
  const std::size_t n = 19;
  auto net = paper_network(n, 45);
  const units::Threshold beta(2.0);
  std::vector<double> q(n, 0.0);
  for (LinkId i = 0; i < n; i += 2) q[i] = 1.0;

  SuccessProbabilityKernel kernel(net, beta);
  kernel.set_probabilities(units::probabilities(q));

  util::RngStream rng(555);
  for (int round = 0; round < 30; ++round) {
    if (round % 3 == 0) {
      const auto gone = static_cast<LinkId>(rng.uniform_index(n));
      kernel.remove_link(gone);  // departure: exactly update_link(id, 0)
      q[gone] = 0.0;
    } else {
      std::vector<std::pair<LinkId, units::Probability>> updates;
      for (int k = 0; k < 3; ++k) {
        const auto id = static_cast<LinkId>(rng.uniform_index(n));
        const double v = q[id] > 0.5 ? 0.0 : 1.0;  // schedule flip
        q[id] = v;
        // Later entries for the same id win, matching sequential replay.
        updates.emplace_back(id, units::Probability(v));
      }
      kernel.update_links(updates);
    }
    SuccessProbabilityKernel fresh(net, beta);
    fresh.set_probabilities(units::probabilities(q));
    for (LinkId i = 0; i < n; ++i) {
      EXPECT_EQ(kernel.success_probabilities()[i],
                fresh.success_probabilities()[i])
          << "round " << round << " link " << i;
    }
    EXPECT_EQ(kernel.expected_successes(), fresh.expected_successes());
  }
}

TEST(SuccessBatchLifecycle, ResetDropsStateAndAllowsReseeding) {
  auto net = paper_network(8, 46);
  const units::Threshold beta(2.5);
  SuccessProbabilityKernel kernel(net, beta);
  kernel.set_probabilities(units::probabilities(random_profile(8, 3)));
  ASSERT_TRUE(kernel.has_state());

  kernel.reset();
  EXPECT_FALSE(kernel.has_state());
  EXPECT_THROW(kernel.success_probabilities(), raysched::error);
  EXPECT_THROW(kernel.update_link(0, units::Probability(0.5)),
               raysched::error);
  EXPECT_THROW(kernel.remove_link(0), raysched::error);

  // Re-seeding after reset is bit-identical to a virgin kernel.
  const auto q2 = units::probabilities(random_profile(8, 4));
  kernel.set_probabilities(q2);
  SuccessProbabilityKernel fresh(net, beta);
  fresh.set_probabilities(q2);
  for (LinkId i = 0; i < 8; ++i) {
    EXPECT_EQ(kernel.success_probabilities()[i],
              fresh.success_probabilities()[i]);
  }
}

TEST(SuccessBatchLifecycle, BatchedUpdateEdgeCases) {
  auto net = hand_matrix_network();
  SuccessProbabilityKernel kernel(net, units::Threshold(1.0));
  EXPECT_THROW(kernel.update_links({{0, units::Probability(0.5)}}),
               raysched::error);  // before set_probabilities
  kernel.set_probabilities(units::probabilities({0.5, 0.5, 0.5}));
  kernel.update_links({});  // empty batch is a no-op, not an error
  EXPECT_THROW(kernel.update_links({{7, units::Probability(0.5)}}),
               raysched::error);  // id out of range

  // Single-link network: the forest has one leaf and no interior rows.
  model::Network tiny(1, std::vector<double>{4.0}, units::Power(0.1));
  SuccessProbabilityKernel one(tiny, units::Threshold(1.0));
  one.set_probabilities(units::probabilities({0.25}));
  one.update_links({{0, units::Probability(0.75)}});
  SuccessProbabilityKernel fresh(tiny, units::Threshold(1.0));
  fresh.set_probabilities(units::probabilities({0.75}));
  EXPECT_EQ(one.success_probabilities()[0],
            fresh.success_probabilities()[0]);
  one.remove_link(0);
  EXPECT_EQ(one.success_probabilities()[0], 0.0);
}

// ---------------------------------------------------------------------------
// Executor injection: parallel chunking must not change a single bit.
// ---------------------------------------------------------------------------

TEST(SuccessBatchExecutor, PoolChunkingIsBitwiseIdenticalToSerial) {
  auto net = paper_network(41, 17);
  const units::Threshold beta(2.5);
  const auto q = units::probabilities(random_profile(41, 0xF00D));

  SuccessProbabilityKernel serial(net, beta);
  // min_chunk 1 forces maximal chunking so boundaries land everywhere.
  sim::ThreadPool pool(4);
  SuccessProbabilityKernel pooled(net, beta,
                                  sim::pool_batch_executor(pool, 1));

  const std::vector<double> a = serial.evaluate(q);
  const std::vector<double> b = pooled.evaluate(q);
  for (LinkId i = 0; i < 41; ++i) EXPECT_EQ(a[i], b[i]) << "link " << i;

  serial.set_probabilities(q);
  pooled.set_probabilities(q);
  util::RngStream rng(7);
  for (int step = 0; step < 10; ++step) {
    const auto id = static_cast<LinkId>(rng.uniform_index(41));
    const units::Probability v(rng.uniform());
    serial.update_link(id, v);
    pooled.update_link(id, v);
  }
  for (LinkId i = 0; i < 41; ++i) {
    EXPECT_EQ(serial.success_probabilities()[i],
              pooled.success_probabilities()[i])
        << "link " << i;
  }
  EXPECT_EQ(serial.expected_successes(), pooled.expected_successes());

  const auto exec = sim::pool_batch_executor(pool, 1);
  const std::vector<double> plain =
      batch_rayleigh_success_probabilities(net, q, beta);
  const std::vector<double> fanned =
      batch_rayleigh_success_probabilities(net, q, beta, exec);
  for (LinkId i = 0; i < 41; ++i) EXPECT_EQ(plain[i], fanned[i]);
  EXPECT_EQ(batch_expected_rayleigh_successes(net, q, beta),
            batch_expected_rayleigh_successes(net, q, beta, exec));
}

}  // namespace
}  // namespace raysched::core
