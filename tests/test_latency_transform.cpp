// Tests for the Section-4 latency transformation (4x repetition).
#include <gtest/gtest.h>

#include <cmath>

#include "core/latency_transform.hpp"

namespace raysched::core {
namespace {

TEST(LatencyTransform, FourRepeats) {
  EXPECT_EQ(kLatencyRepeats, 4);
}

TEST(LatencyTransform, ClosedForm) {
  const double p = 0.3;
  const double expected = 1.0 - std::pow(1.0 - p / std::exp(1.0), 4);
  EXPECT_NEAR(boosted_success_probability(units::Probability(p)).value(), expected, 1e-12);
}

TEST(LatencyTransform, BoundaryValues) {
  EXPECT_DOUBLE_EQ(boosted_success_probability(units::Probability(0.0)).value(), 0.0);
  EXPECT_GT(boosted_success_probability(units::Probability(1.0)).value(), 0.0);
  EXPECT_LT(boosted_success_probability(units::Probability(1.0)).value(), 1.0);
  EXPECT_THROW(boosted_success_probability(units::Probability(-0.1)), raysched::error);
  EXPECT_THROW(boosted_success_probability(units::Probability(1.1)), raysched::error);
}

TEST(LatencyTransform, DominatesUpToHalf) {
  // The paper's claim: for p <= 1/2, four Rayleigh repeats succeed at least
  // as often as one non-fading step. Dense sweep.
  for (int k = 0; k <= 500; ++k) {
    const double p = 0.5 * static_cast<double>(k) / 500.0;
    EXPECT_TRUE(boost_dominates(units::Probability(p))) << "p=" << p;
    EXPECT_GE(boosted_success_probability(units::Probability(p)).value(), p) << "p=" << p;
  }
}

TEST(LatencyTransform, MonotoneInP) {
  double prev = -1.0;
  for (int k = 0; k <= 100; ++k) {
    const double p = static_cast<double>(k) / 100.0;
    const double b = boosted_success_probability(units::Probability(p)).value();
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(LatencyTransform, SmallPBoostFactorApproaches4OverE) {
  // For p -> 0, boosted ~ 4p/e.
  const double p = 1e-6;
  EXPECT_NEAR(boosted_success_probability(units::Probability(p)).value() / p,
              4.0 / std::exp(1.0), 1e-4);
}

}  // namespace
}  // namespace raysched::core
