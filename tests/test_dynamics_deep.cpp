// Second-order behavior of the learning dynamics: regime extremes,
// fairness of comparisons, sequential-update stability of best response,
// and cross-learner consistency on shared instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "test_helpers.hpp"

namespace raysched::learning {
namespace {

using raysched::testing::paper_network;

// ---------------------------------------------------------------------------
// Regime extremes.
// ---------------------------------------------------------------------------

TEST(DynamicsDeep, ImpossibleBetaDrivesEveryoneQuiet) {
  // beta far above anything achievable: sending always fails (loss 1 vs the
  // stay loss 0.5), so all learners converge to Stay and F -> 0.
  auto net = paper_network(12, 1, 2.2, /*noise=*/5e-3);  // noise-dominated
  GameOptions opts;
  opts.rounds = 400;
  opts.beta = 50.0;
  util::RngStream rng(1);
  const auto result = run_capacity_game(
      net, opts, [] { return std::make_unique<RwmLearner>(); }, rng);
  double late_f = 0.0;
  for (std::size_t t = 300; t < 400; ++t) {
    late_f += result.transmitters_per_round[t];
  }
  EXPECT_LT(late_f / 100.0, 1.0);
  EXPECT_DOUBLE_EQ(result.successes_per_round.back(), 0.0);
}

TEST(DynamicsDeep, TrivialBetaDrivesEveryoneToSend) {
  // beta so low every link succeeds regardless: send strictly dominates.
  auto net = paper_network(12, 2);
  GameOptions opts;
  opts.rounds = 300;
  opts.beta = 1e-6;
  util::RngStream rng(2);
  const auto result = run_capacity_game(
      net, opts, [] { return std::make_unique<RwmLearner>(); }, rng);
  double late_f = 0.0;
  for (std::size_t t = 250; t < 300; ++t) {
    late_f += result.transmitters_per_round[t];
  }
  EXPECT_GT(late_f / 50.0, 11.0);
}

TEST(DynamicsDeep, BestResponseMatchesGameExtremes) {
  auto net = paper_network(12, 3);
  BestResponseOptions quiet;
  quiet.beta = 1e6;
  quiet.model = GameModel::NonFading;
  quiet.start_all_sending = true;
  const auto q = run_best_response(net, quiet);
  EXPECT_TRUE(q.converged);
  EXPECT_EQ(std::count(q.sending.begin(), q.sending.end(), true), 0);

  BestResponseOptions loud;
  loud.beta = 1e-9;
  loud.model = GameModel::NonFading;
  const auto l = run_best_response(net, loud);
  EXPECT_TRUE(l.converged);
  EXPECT_EQ(std::count(l.sending.begin(), l.sending.end(), true), 12);
}

// ---------------------------------------------------------------------------
// Sequential best response does not oscillate on blocking pairs.
// ---------------------------------------------------------------------------

TEST(DynamicsDeep, SequentialUpdatesAvoidSimultaneousOscillation) {
  // Two mutually blocking links: simultaneous best response would cycle
  // (both in, both out, ...); the round-robin dynamics must settle on
  // exactly one sender.
  auto net = raysched::testing::two_close_links(1e-6);
  for (bool start : {false, true}) {
    BestResponseOptions opts;
    opts.beta = 2.0;
    opts.start_all_sending = start;
    const auto result = run_best_response(net, opts);
    EXPECT_TRUE(result.converged) << "start " << start;
    EXPECT_EQ(std::count(result.sending.begin(), result.sending.end(), true),
              1)
        << "start " << start;
  }
}

// ---------------------------------------------------------------------------
// Cross-learner comparisons on the same instance and seed.
// ---------------------------------------------------------------------------

TEST(DynamicsDeep, RwmBeatsExp3EarlyOnTheSameInstance) {
  // Full information should converge faster: compare cumulative successes
  // over a short horizon on identical instances.
  double rwm_total = 0.0, exp3_total = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto net = paper_network(15, 100 + seed);
    GameOptions opts;
    opts.rounds = 80;  // short horizon: the information gap shows here
    opts.beta = 2.5;
    util::RngStream r1(seed), r2(seed);
    const auto rwm = run_capacity_game(
        net, opts, [] { return std::make_unique<RwmLearner>(); }, r1);
    const auto exp3 = run_capacity_game(
        net, opts, [] { return std::make_unique<Exp3Learner>(); }, r2);
    for (double s : rwm.successes_per_round) rwm_total += s;
    for (double s : exp3.successes_per_round) exp3_total += s;
  }
  EXPECT_GT(rwm_total, exp3_total);
}

TEST(DynamicsDeep, FictitiousPlayAgreesWithBestResponseOnStrictInstances) {
  // On instances where best response converges from both extreme starts to
  // the same profile, fictitious play should find a profile with the same
  // number of senders.
  auto net = raysched::testing::two_far_links(1e-6);
  BestResponseOptions br;
  br.beta = 2.0;
  const auto fixed = run_best_response(net, br);
  ASSERT_TRUE(fixed.converged);
  FictitiousPlayOptions fp;
  fp.model = GameModel::NonFading;
  fp.beta = 2.0;
  fp.rounds = 150;
  util::RngStream rng(5);
  const auto fp_result = run_fictitious_play(net, fp, rng);
  EXPECT_EQ(std::count(fp_result.final_profile.begin(),
                       fp_result.final_profile.end(), true),
            std::count(fixed.sending.begin(), fixed.sending.end(), true));
}

// ---------------------------------------------------------------------------
// Reward bookkeeping invariants.
// ---------------------------------------------------------------------------

TEST(DynamicsDeep, SuccessesNeverExceedTransmittersAndRegretBounded) {
  auto net = paper_network(18, 6);
  GameOptions opts;
  opts.rounds = 500;
  opts.beta = 2.5;
  opts.model = GameModel::Rayleigh;
  util::RngStream rng(6);
  const auto result = run_capacity_game(
      net, opts, [] { return std::make_unique<Exp3Learner>(); }, rng);
  for (std::size_t t = 0; t < opts.rounds; ++t) {
    EXPECT_LE(result.successes_per_round[t],
              result.transmitters_per_round[t]);
  }
  // Loss-regret per round is bounded by the loss range [0, 1].
  for (double r : result.regret_per_link) {
    EXPECT_LE(r, static_cast<double>(opts.rounds));
    EXPECT_GE(r, -static_cast<double>(opts.rounds) * 0.5);
  }
}

TEST(DynamicsDeep, ExpectedSuccessesConsistentWithRealized) {
  // X (expected, closed form per realized set) and the realized successes
  // must agree in the mean over a long Rayleigh run.
  auto net = paper_network(15, 7);
  GameOptions opts;
  opts.rounds = 1500;
  opts.beta = 2.5;
  opts.model = GameModel::Rayleigh;
  util::RngStream rng(7);
  const auto result = run_capacity_game(
      net, opts, [] { return std::make_unique<RwmLearner>(); }, rng);
  EXPECT_NEAR(result.average_successes, result.average_expected_successes,
              0.15 * result.average_expected_successes + 0.3);
}

}  // namespace
}  // namespace raysched::learning
