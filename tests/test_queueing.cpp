// Tests for max-weight queue scheduling.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace raysched::algorithms {
namespace {

using raysched::testing::paper_network;
using raysched::testing::two_far_links;

QueueSimOptions base_options(const model::Network& net, double lambda,
                             Propagation prop = Propagation::NonFading) {
  QueueSimOptions opts;
  opts.slots = 1500;
  opts.beta = units::Threshold(2.5);
  opts.propagation = prop;
  opts.arrival_probs = units::uniform_probabilities(
      net.size(), units::Probability::checked(lambda));
  return opts;
}

TEST(Queueing, NoArrivalsNoActivity) {
  auto net = paper_network(10, 1);
  util::RngStream rng(1);
  const auto result =
      run_max_weight_queueing(net, base_options(net, 0.0), rng);
  EXPECT_DOUBLE_EQ(result.served_per_slot, 0.0);
  EXPECT_DOUBLE_EQ(result.average_backlog, 0.0);
  EXPECT_TRUE(result.looks_stable);
  for (std::size_t q : result.final_queue) EXPECT_EQ(q, 0u);
}

TEST(Queueing, ConservationArrivalsEqualServedPlusBacklogPlusDrops) {
  auto net = paper_network(15, 2);
  util::RngStream rng(2);
  auto opts = base_options(net, 0.3);
  const auto result = run_max_weight_queueing(net, opts, rng);
  std::size_t backlog = 0;
  for (std::size_t q : result.final_queue) backlog += q;
  const double arrivals = result.arrivals_per_slot * opts.slots;
  const double served = result.served_per_slot * opts.slots;
  EXPECT_NEAR(arrivals, served + static_cast<double>(backlog), 0.5);
}

TEST(Queueing, LightLoadIsStableAndServesEverything) {
  auto net = paper_network(20, 3);
  util::RngStream rng(3);
  const auto result =
      run_max_weight_queueing(net, base_options(net, 0.05), rng);
  EXPECT_TRUE(result.looks_stable);
  // Throughput ~ offered load.
  EXPECT_NEAR(result.served_per_slot, result.arrivals_per_slot, 0.1);
  EXPECT_EQ(result.dropped, 0u);
}

TEST(Queueing, OverloadIsDetectedAsUnstable) {
  // Two co-located links can serve at most ~1 packet/slot combined;
  // lambda = 0.9 each is far beyond capacity.
  auto net = raysched::testing::two_close_links(1e-6);
  util::RngStream rng(4);
  auto opts = base_options(net, 0.9);
  opts.beta = units::Threshold(2.0);
  const auto result = run_max_weight_queueing(net, opts, rng);
  EXPECT_FALSE(result.looks_stable);
  // Combined service bounded by 1/slot.
  EXPECT_LE(result.served_per_slot, 1.05);
}

TEST(Queueing, RayleighThroughputBelowNonFadingUnderLoad) {
  auto net = paper_network(20, 5);
  util::RngStream r1(5), r2(5);
  const auto nf = run_max_weight_queueing(
      net, base_options(net, 0.6, Propagation::NonFading), r1);
  const auto rl = run_max_weight_queueing(
      net, base_options(net, 0.6, Propagation::Rayleigh), r2);
  // At saturating load, Rayleigh serves less per slot (Lemma-2 tax).
  EXPECT_LT(rl.served_per_slot, nf.served_per_slot);
  // But not less than ~1/e of it (every scheduled link clears beta with
  // probability >= 1/e; slack for scheduling interactions).
  EXPECT_GT(rl.served_per_slot, nf.served_per_slot / std::exp(1.0) * 0.8);
}

TEST(Queueing, IndependentLinksSustainHighLoad) {
  auto net = two_far_links(1e-6);
  util::RngStream rng(6);
  auto opts = base_options(net, 0.8);
  opts.beta = units::Threshold(2.0);
  const auto result = run_max_weight_queueing(net, opts, rng);
  EXPECT_TRUE(result.looks_stable);
  EXPECT_NEAR(result.served_per_slot, result.arrivals_per_slot, 0.1);
}

TEST(Queueing, QueueCapCountsDrops) {
  auto net = raysched::testing::two_close_links(1e-6);
  util::RngStream rng(7);
  auto opts = base_options(net, 1.0);
  opts.beta = units::Threshold(2.0);
  opts.queue_cap = 5;
  opts.slots = 500;
  const auto result = run_max_weight_queueing(net, opts, rng);
  EXPECT_GT(result.dropped, 0u);
  for (std::size_t q : result.final_queue) EXPECT_LE(q, 5u);
}

TEST(Queueing, BacklogWindowsExposeTheTrend) {
  // Stable light load: both window means stay near zero and so does the
  // slope. Overload: the last-quarter mean and the slope must both show
  // growth — the frontier sweeps read the trend, not just the verdict.
  auto net = raysched::testing::two_close_links(1e-6);
  util::RngStream r1(11), r2(11);
  auto light = base_options(net, 0.05);
  light.beta = units::Threshold(2.0);
  const auto stable = run_max_weight_queueing(net, light, r1);
  EXPECT_TRUE(stable.looks_stable);
  EXPECT_LT(stable.backlog_slope, 0.01);

  auto heavy = base_options(net, 0.9);
  heavy.beta = units::Threshold(2.0);
  const auto unstable = run_max_weight_queueing(net, heavy, r2);
  EXPECT_FALSE(unstable.looks_stable);
  EXPECT_GT(unstable.backlog_mean_q4, unstable.backlog_mean_q2);
  EXPECT_GT(unstable.backlog_slope, 0.1);
}

TEST(Queueing, ShortRunsHaveNoQuarterWindows) {
  // slots < 4 means quarter == 0; the window fields must fall back to the
  // overall mean instead of dividing by zero.
  auto net = paper_network(5, 9);
  util::RngStream rng(9);
  auto opts = base_options(net, 0.5);
  opts.slots = 3;
  const auto result = run_max_weight_queueing(net, opts, rng);
  EXPECT_DOUBLE_EQ(result.backlog_mean_q2, result.average_backlog);
  EXPECT_DOUBLE_EQ(result.backlog_mean_q4, result.average_backlog);
  EXPECT_DOUBLE_EQ(result.backlog_slope, 0.0);
}

TEST(Queueing, Validation) {
  auto net = paper_network(5, 8);
  util::RngStream rng(1);
  QueueSimOptions bad;
  bad.arrival_probs = units::uniform_probabilities(
      3, units::Probability::checked(0.5));  // wrong size
  EXPECT_THROW(run_max_weight_queueing(net, bad, rng), raysched::error);
  // Out-of-range probabilities can no longer reach the simulation at all:
  // the unit type rejects them at the construction boundary.
  EXPECT_THROW(units::probabilities({0.5, 1.5}), raysched::error);
  QueueSimOptions bad3 = base_options(net, 0.5);
  bad3.slots = 0;
  EXPECT_THROW(run_max_weight_queueing(net, bad3, rng), raysched::error);
}

}  // namespace
}  // namespace raysched::algorithms
