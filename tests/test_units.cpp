// Unit strong types (util/units.hpp): domain contracts, dB<->linear
// round-trips, the compile-time walls between dimensions, and a regression
// pin that the unit-typed Theorem-1 path is bit-identical to the raw-double
// formula it replaced.
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>
#include <vector>

#include "core/success_probability.hpp"
#include "model/network.hpp"
#include "model/sinr.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using namespace raysched;  // NOLINT(google-build-using-namespace)
using raysched::testing::paper_network;

// ---------------------------------------------------------------------------
// Domain contracts.

TEST(Units, ProbabilityCheckedRejectsOutOfRange) {
  EXPECT_THROW(units::Probability::checked(-0.1), raysched::error);
  EXPECT_THROW(units::Probability::checked(1.1), raysched::error);
  EXPECT_THROW(units::Probability::checked(
                   std::numeric_limits<double>::quiet_NaN()),
               raysched::error);
  EXPECT_DOUBLE_EQ(units::Probability::checked(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(units::Probability::checked(1.0).value(), 1.0);
}

TEST(Units, ProbabilityClampedSnapsIntoRange) {
  EXPECT_DOUBLE_EQ(units::Probability::clamped(-0.25).value(), 0.0);
  EXPECT_DOUBLE_EQ(units::Probability::clamped(1.75).value(), 1.0);
  EXPECT_DOUBLE_EQ(units::Probability::clamped(0.5).value(), 0.5);
  EXPECT_THROW(units::Probability::clamped(
                   std::numeric_limits<double>::quiet_NaN()),
               raysched::error);
}

TEST(Units, CheckedFactoriesRejectBadDomains) {
  EXPECT_THROW(units::LinearGain::checked(-1.0), raysched::error);
  EXPECT_THROW(units::Power::checked(-1e-9), raysched::error);
  EXPECT_THROW(units::Distance::checked(-2.0), raysched::error);
  EXPECT_THROW(units::Threshold::checked(0.0), raysched::error);
  EXPECT_THROW(units::Threshold::checked(-2.5), raysched::error);
  EXPECT_THROW(units::Decibel::checked(
                   std::numeric_limits<double>::infinity()),
               raysched::error);
}

TEST(Units, ProbabilityAlgebra) {
  const units::Probability p(0.25);
  EXPECT_DOUBLE_EQ(p.complement().value(), 0.75);
  EXPECT_DOUBLE_EQ((p * units::Probability(0.5)).value(), 0.125);
}

TEST(Units, VectorHelpersValidateAndRoundTrip) {
  const std::vector<double> raw = {0.0, 0.25, 1.0};
  const units::ProbabilityVector q = units::probabilities(raw);
  EXPECT_EQ(units::raw_values(q), raw);
  EXPECT_THROW(units::probabilities({0.5, 1.5}), raysched::error);
  EXPECT_THROW(units::probabilities({-0.5}), raysched::error);

  const auto betas = units::thresholds({1.0, 2.5});
  EXPECT_DOUBLE_EQ(betas[1].value(), 2.5);
  EXPECT_THROW(units::thresholds({1.0, 0.0}), raysched::error);

  const auto sparse = units::thresholds_or_placeholder({2.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(sparse[0].value(), 2.0);
  EXPECT_DOUBLE_EQ(sparse[1].value(), units::Threshold().value());
  EXPECT_DOUBLE_EQ(sparse[2].value(), 4.0);
}

// ---------------------------------------------------------------------------
// dB <-> linear round-trips through the sole crossing point.

TEST(Units, DbLinearRoundTripIsTight) {
  for (double db = -60.0; db <= 60.0; db += 1.37) {
    const units::LinearGain g = units::to_linear(units::Decibel(db));
    const double back = units::to_db(g).value();
    EXPECT_NEAR(back, db, 1e-12 * std::max(1.0, std::abs(db))) << "dB " << db;
  }
}

TEST(Units, LinearDbRoundTripIsTight) {
  for (double g = 1e-6; g <= 1e6; g *= 7.3) {
    const double back = units::to_linear(units::to_db(units::LinearGain(g)))
                            .value();
    EXPECT_NEAR(back, g, 1e-12 * g) << "gain " << g;
  }
}

TEST(Units, KnownDbAnchors) {
  EXPECT_NEAR(units::to_linear(units::Decibel(0.0)).value(), 1.0, 1e-15);
  EXPECT_NEAR(units::to_linear(units::Decibel(10.0)).value(), 10.0, 1e-12);
  EXPECT_NEAR(units::to_linear(units::Decibel(-10.0)).value(), 0.1, 1e-13);
  EXPECT_NEAR(units::to_linear(units::Decibel(3.0)).value(), 1.9952623149689,
              1e-10);
  EXPECT_NEAR(units::Threshold::from_db(units::Decibel(3.0)).value(),
              units::to_linear(units::Decibel(3.0)).value(), 0.0);
  EXPECT_NEAR(units::to_linear_power(units::Decibel(20.0)).value(), 100.0,
              1e-10);
}

// ---------------------------------------------------------------------------
// Compile-time walls. These probes re-state, as static_asserts, that the
// deleted/absent overloads which would let dimensions leak into each other
// do not exist: a dB where a linear threshold belongs must not compile.

template <typename From, typename To>
inline constexpr bool converts = std::is_convertible_v<From, To>;

static_assert(!converts<double, units::Probability>,
              "double must not implicitly become a Probability");
static_assert(!converts<double, units::Threshold>,
              "double must not implicitly become a Threshold");
static_assert(!converts<double, units::Decibel>,
              "double must not implicitly become a Decibel");
static_assert(!converts<units::Decibel, units::Threshold>,
              "a dB value must not pass as a linear threshold");
static_assert(!converts<units::Threshold, units::Decibel>,
              "a linear threshold must not pass as a dB value");
static_assert(!converts<units::LinearGain, units::Power>,
              "gains and powers are distinct dimensions");
static_assert(!converts<units::Probability, double>,
              "leaving the unit layer requires an explicit .value()");

// The deliberate argument-swap probe from the acceptance criteria: calling
// model::is_feasible with a Decibel where the Threshold belongs must fail
// to compile.
template <typename Beta>
concept CanCallIsFeasible = requires(const model::Network& net,
                                     const model::LinkSet& active, Beta b) {
  model::is_feasible(net, active, b);
};
static_assert(CanCallIsFeasible<units::Threshold>,
              "the typed call is the sanctioned one");
static_assert(!CanCallIsFeasible<units::Decibel>,
              "dB-for-linear swap at the sinr.hpp boundary must not compile");
static_assert(!CanCallIsFeasible<double>,
              "raw doubles no longer cross the sinr.hpp boundary");

template <typename Q>
concept CanCallTheorem1 = requires(const model::Network& net, Q q,
                                   units::Threshold beta) {
  core::rayleigh_success_probability(net, q, 0, beta);
};
static_assert(CanCallTheorem1<units::ProbabilityVector>,
              "the typed call is the sanctioned one");
static_assert(!CanCallTheorem1<std::vector<double>>,
              "raw double vectors no longer cross the core boundary");

// Mixed-dimension arithmetic must not exist.
template <typename A, typename B>
concept CanMultiply = requires(A a, B b) { a * b; };
template <typename A, typename B>
concept CanAdd = requires(A a, B b) { a + b; };
static_assert(!CanMultiply<units::Probability, units::Threshold>);
static_assert(!CanAdd<units::Probability, units::Probability>,
              "summing probabilities yields an expectation: do it in double");
static_assert(!CanAdd<units::Decibel, units::LinearGain>);
static_assert(CanAdd<units::Decibel, units::Decibel>,
              "dB values compose additively by design");
static_assert(CanMultiply<units::Probability, units::Probability>,
              "independent events compose multiplicatively by design");

// Zero-overhead layout: a ProbabilityVector is contiguous doubles.
static_assert(sizeof(units::Probability) == sizeof(double));
static_assert(std::is_trivially_copyable_v<units::Probability>);

// ---------------------------------------------------------------------------
// Regression pin: the unit-typed Theorem-1 path must be bit-identical to
// the raw-double product form it replaced (the implementations unwrap once
// and run the same expression order).

TEST(Units, TypedTheorem1BitMatchesRawFormula) {
  auto net = paper_network(12, 7);
  const double beta = 2.5;
  std::vector<double> q(net.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = 0.1 + 0.8 * static_cast<double>(i) / static_cast<double>(q.size());
  }
  const units::ProbabilityVector typed_q = units::probabilities(q);
  for (model::LinkId i = 0; i < net.size(); ++i) {
    // The pre-refactor formula, spelled out on raw doubles.
    const double sii = net.signal(i);
    double expected = q[i] * std::exp(-beta * net.noise() / sii);
    for (model::LinkId j = 0; j < net.size(); ++j) {
      if (j == i || q[j] == 0.0) continue;
      const double sji = net.mean_gain(j, i);
      expected *= 1.0 - beta * sji * q[j] / (beta * sji + sii);
    }
    const double typed =
        core::rayleigh_success_probability(net, typed_q, i,
                                           units::Threshold(beta))
            .value();
    EXPECT_EQ(typed, expected) << "bit mismatch at link " << i;
  }
}

}  // namespace
