// Shared fixtures and instance builders for the raysched test suite.
#pragma once

#include <vector>

#include "raysched.hpp"

namespace raysched::testing {

/// Two parallel links far apart: both trivially feasible at moderate beta.
inline model::Network two_far_links(double noise = 0.0) {
  std::vector<model::Link> links = {
      {model::Point{0.0, 0.0}, model::Point{1.0, 0.0}},
      {model::Point{0.0, 100.0}, model::Point{1.0, 100.0}},
  };
  return model::Network(std::move(links), model::PowerAssignment::uniform(1.0),
                        2.0, units::Power(noise));
}

/// Two co-located links: heavy mutual interference, at most one can meet a
/// beta >= 1 threshold.
inline model::Network two_close_links(double noise = 0.0) {
  std::vector<model::Link> links = {
      {model::Point{0.0, 0.0}, model::Point{1.0, 0.0}},
      {model::Point{0.0, 0.5}, model::Point{1.0, 0.5}},
  };
  return model::Network(std::move(links), model::PowerAssignment::uniform(1.0),
                        2.0, units::Power(noise));
}

/// A 3-link geometry-free network with a hand-chosen gain matrix.
/// Row-major [j*n + i] = S(j,i):
///   own signals 10, cross gains small and asymmetric.
inline model::Network hand_matrix_network(double noise = 0.1) {
  const std::vector<double> gains = {
      10.0, 1.0, 0.5,   // sender 0 at receivers 0,1,2
      2.0, 10.0, 0.25,  // sender 1
      0.5, 0.5, 10.0,   // sender 2
  };
  return model::Network(3, gains, units::Power(noise));
}

/// Paper-style random plane network (Figure 1 family, scaled down).
inline model::Network paper_network(std::size_t n, std::uint64_t seed,
                                    double alpha = 2.2, double noise = 4e-7,
                                    double power = 2.0,
                                    double min_len = 20.0,
                                    double max_len = 40.0) {
  util::RngStream rng(seed);
  model::RandomPlaneParams params;
  params.num_links = n;
  params.min_length = min_len;
  params.max_length = max_len;
  auto links = model::random_plane_links(params, rng);
  return model::Network(std::move(links),
                        model::PowerAssignment::uniform(power), alpha, units::Power(noise));
}

}  // namespace raysched::testing
