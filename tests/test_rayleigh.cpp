// Tests for the Rayleigh-fading channel: sampling and closed-form slot
// success probabilities.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::model {
namespace {

using raysched::testing::hand_matrix_network;
using raysched::testing::two_far_links;

TEST(Rayleigh, ClosedFormMatchesHandComputation) {
  // One interferer, no noise: P = 1 / (1 + beta S(j,i)/S(i,i)).
  auto net = hand_matrix_network(0.0);
  const double beta = 2.0;
  // Link 0 with interferer 1: S(1,0) = 2, S(0,0) = 10.
  EXPECT_NEAR(success_probability_rayleigh(net, {0, 1}, 0, units::Threshold(beta)).value(),
              1.0 / (1.0 + 2.0 * 2.0 / 10.0), 1e-12);
  // Two interferers: product form.
  EXPECT_NEAR(success_probability_rayleigh(net, {0, 1, 2}, 0, units::Threshold(beta)).value(),
              1.0 / ((1.0 + 2.0 * 2.0 / 10.0) * (1.0 + 2.0 * 0.5 / 10.0)),
              1e-12);
}

TEST(Rayleigh, NoiseOnlyTermIsExponential) {
  auto net = hand_matrix_network(0.5);
  const double beta = 3.0;
  // Alone: P = exp(-beta nu / S(i,i)).
  EXPECT_NEAR(success_probability_rayleigh(net, {1}, 1, units::Threshold(beta)).value(),
              std::exp(-3.0 * 0.5 / 10.0), 1e-12);
}

TEST(Rayleigh, SuccessAlwaysPossible) {
  // Even when the non-fading model gives 0 successes (huge noise), Rayleigh
  // success probability stays positive — the paper's motivating asymmetry.
  auto net = hand_matrix_network(100.0);
  EXPECT_LT(sinr_nonfading(net, {0}, 0), 1.0);
  EXPECT_GT(success_probability_rayleigh(net, {0}, 0, units::Threshold(1.0)).value(), 0.0);
}

TEST(Rayleigh, ClosedFormMatchesMonteCarlo) {
  auto net = hand_matrix_network(0.2);
  const double beta = 1.5;
  const LinkSet active = {0, 1, 2};
  const double exact = success_probability_rayleigh(net, active, 0, units::Threshold(beta)).value();
  util::RngStream rng(99);
  const int trials = 40000;
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    if (sinr_rayleigh(net, active, 0, rng) >= beta) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), exact,
              4.0 * std::sqrt(exact * (1 - exact) / trials) + 1e-3);
}

TEST(Rayleigh, ExpectedSuccessesIsSumOfProbabilities) {
  auto net = hand_matrix_network(0.1);
  const LinkSet active = {0, 2};
  const double beta = 2.0;
  EXPECT_NEAR(expected_successes_rayleigh(net, active, units::Threshold(beta)),
              success_probability_rayleigh(net, active, 0, units::Threshold(beta)).value() +
                  success_probability_rayleigh(net, active, 2, units::Threshold(beta)).value(),
              1e-12);
}

TEST(Rayleigh, AllRealizationMatchesPerLinkDistribution) {
  // sinr_rayleigh_all must give each link the same marginal success rate as
  // the closed form.
  auto net = two_far_links(0.01);
  const double beta = 5.0;
  const LinkSet active = {0, 1};
  util::RngStream rng(7);
  const int trials = 30000;
  int hits0 = 0, hits1 = 0;
  for (int t = 0; t < trials; ++t) {
    const auto sinrs = sinr_rayleigh_all(net, active, rng);
    if (sinrs[0] >= beta) ++hits0;
    if (sinrs[1] >= beta) ++hits1;
  }
  const double p0 = success_probability_rayleigh(net, active, 0, units::Threshold(beta)).value();
  const double p1 = success_probability_rayleigh(net, active, 1, units::Threshold(beta)).value();
  EXPECT_NEAR(hits0 / static_cast<double>(trials), p0, 0.012);
  EXPECT_NEAR(hits1 / static_cast<double>(trials), p1, 0.012);
}

TEST(Rayleigh, CountSuccessesWithinBounds) {
  auto net = hand_matrix_network(0.1);
  util::RngStream rng(3);
  for (int t = 0; t < 50; ++t) {
    const auto c = count_successes_rayleigh(net, {0, 1, 2}, units::Threshold(1.0), rng);
    EXPECT_LE(c, 3u);
  }
}

TEST(Rayleigh, RequiresMembership) {
  auto net = hand_matrix_network();
  util::RngStream rng(1);
  EXPECT_THROW(sinr_rayleigh(net, {1, 2}, 0, rng), raysched::error);
  EXPECT_THROW(success_probability_rayleigh(net, {1}, 0, units::Threshold(1.0)),
               raysched::error);
}

TEST(Rayleigh, ProbabilityDecreasesWithBeta) {
  auto net = hand_matrix_network(0.1);
  const LinkSet active = {0, 1, 2};
  double prev = 1.0;
  for (double beta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double p = success_probability_rayleigh(net, active, 0, units::Threshold(beta)).value();
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Rayleigh, ProbabilityDecreasesWithMoreInterferers) {
  auto net = hand_matrix_network(0.1);
  const double beta = 2.0;
  const double alone = success_probability_rayleigh(net, {0}, 0, units::Threshold(beta)).value();
  const double one = success_probability_rayleigh(net, {0, 1}, 0, units::Threshold(beta)).value();
  const double two = success_probability_rayleigh(net, {0, 1, 2}, 0, units::Threshold(beta)).value();
  EXPECT_GT(alone, one);
  EXPECT_GT(one, two);
}

}  // namespace
}  // namespace raysched::model
