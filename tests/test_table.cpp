#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/table.hpp"
#include "util/error.hpp"

namespace raysched::util {
namespace {

TEST(Table, TextRenderingAligns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 2.2});
  t.add_row({std::string("links"), static_cast<long long>(100)});
  std::ostringstream ss;
  t.print_text(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("2.2000"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({static_cast<long long>(1), 0.5});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n1,0.500000\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"text"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "text\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, NanRendersAsMissingValue) {
  // NaN is the "no surviving samples" marker from SeriesAccumulator::means;
  // it must render as NA, not as "nan"/"-nan(ind)" noise a plotting script
  // would choke on.
  Table t({"size", "mean"});
  t.add_row({static_cast<long long>(8), 0.5});
  t.add_row({static_cast<long long>(16),
             std::numeric_limits<double>::quiet_NaN()});
  std::ostringstream text;
  t.print_text(text);
  EXPECT_NE(text.str().find("NA"), std::string::npos);
  EXPECT_EQ(text.str().find("nan"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "size,mean\n8,0.500000\n16,NA\n");
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({static_cast<long long>(1)}), raysched::error);
  EXPECT_THROW(Table({}), raysched::error);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({1.0, 2.0, 3.0});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.add_row({static_cast<long long>(7), 1.25});
  const std::string path = "test_table_roundtrip.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "k,v\n7,1.250000\n");
  std::remove(path.c_str());
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace raysched::util
