// Tests for the Rayleigh-optimal probability search (Section 5's optimum
// over transmission probability assignments).
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::algorithms {
namespace {

using model::LinkId;
using raysched::testing::hand_matrix_network;
using raysched::testing::paper_network;

TEST(Gradient, MatchesFiniteDifferences) {
  auto net = hand_matrix_network(0.1);
  const double beta = 1.5;
  const std::vector<double> q = {0.6, 0.3, 0.8};
  const auto grad = expected_capacity_gradient(net, q, beta);
  const double h = 1e-6;
  for (LinkId k = 0; k < 3; ++k) {
    std::vector<double> up = q, dn = q;
    up[k] += h;
    dn[k] -= h;
    const double fd = (core::expected_rayleigh_successes(net, units::probabilities(up), units::Threshold(beta)) -
                       core::expected_rayleigh_successes(net, units::probabilities(dn), units::Threshold(beta))) /
                      (2.0 * h);
    EXPECT_NEAR(grad[k], fd, 1e-5) << "coordinate " << k;
  }
}

TEST(Gradient, FiniteDifferencesOnRandomInstance) {
  auto net = paper_network(10, 77);
  util::RngStream rng(5);
  std::vector<double> q(net.size());
  for (auto& v : q) v = 0.1 + 0.8 * rng.uniform();
  const double beta = 2.5;
  const auto grad = expected_capacity_gradient(net, q, beta);
  const double h = 1e-6;
  for (LinkId k = 0; k < net.size(); k += 3) {
    std::vector<double> up = q, dn = q;
    up[k] += h;
    dn[k] -= h;
    const double fd = (core::expected_rayleigh_successes(net, units::probabilities(up), units::Threshold(beta)) -
                       core::expected_rayleigh_successes(net, units::probabilities(dn), units::Threshold(beta))) /
                      (2.0 * h);
    EXPECT_NEAR(grad[k], fd, 1e-4) << "coordinate " << k;
  }
}

TEST(Gradient, ZeroProbabilityCoordinateHasOwnTermOnly) {
  // With q_k = 0 the cross terms vanish from Q_k but dE/dq_k must still be
  // the marginal value of starting to transmit.
  auto net = hand_matrix_network(0.0);
  const std::vector<double> q = {0.0, 1.0, 0.0};
  const auto grad = expected_capacity_gradient(net, q, 1.0);
  // dE/dq_0 = core_0 - Q_1 * c(0,1) / (1 - c(0,1) * q_0) with q_0 = 0.
  // core_0 has only interferer 1 active: 1/(1 + beta S(1,0)/S(0,0)) = 5/6.
  // Q_1 = q_1 * core_1 = 1 (links 0 and 2 have q = 0, noise 0).
  const double core0 = 1.0 / (1.0 + 1.0 * 2.0 / 10.0);
  const double c01 = 1.0 * 1.0 / (1.0 * 1.0 + 10.0);  // S(0,1) = 1
  EXPECT_NEAR(grad[0], core0 - 1.0 * c01, 1e-12);
}

TEST(GradientAscent, ImprovesObjectiveAndStaysInBox) {
  auto net = paper_network(20, 4);
  const double beta = 2.5;
  std::vector<double> start(net.size(), 0.5);
  const double start_value =
      core::expected_rayleigh_successes(net, units::probabilities(start), units::Threshold(beta));
  const auto result =
      maximize_capacity_gradient_ascent(net, beta, start);
  EXPECT_GE(result.value, start_value);
  for (double v : result.q) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_NEAR(result.value,
              core::expected_rayleigh_successes(net, units::probabilities(result.q), units::Threshold(beta)), 1e-9);
}

TEST(CoordinateAscent, ReturnsVertexProfile) {
  auto net = paper_network(15, 8);
  const auto result = maximize_capacity_coordinate_ascent(net, 2.5);
  for (double v : result.q) {
    EXPECT_TRUE(v == 0.0 || v == 1.0) << v;
  }
  EXPECT_TRUE(result.converged);
}

TEST(CoordinateAscent, OneFlipLocalOptimality) {
  auto net = paper_network(12, 3);
  const double beta = 2.5;
  const auto result = maximize_capacity_coordinate_ascent(net, beta);
  // No single flip improves the objective (multilinearity makes this the
  // exact local-optimality certificate).
  for (LinkId k = 0; k < net.size(); ++k) {
    std::vector<double> flipped = result.q;
    flipped[k] = flipped[k] == 0.0 ? 1.0 : 0.0;
    EXPECT_LE(core::expected_rayleigh_successes(net, units::probabilities(flipped), units::Threshold(beta)),
              result.value + 1e-9)
        << "flip " << k;
  }
}

TEST(CoordinateAscent, BeatsOrMatchesGradientAscentFromUniformStart) {
  // Multilinearity: some vertex is globally optimal, so the vertex search
  // should do at least as well as one interior gradient run (not a theorem
  // for local optima, but holds on these instances and guards regressions).
  auto net = paper_network(15, 21);
  const double beta = 2.5;
  const auto vertex = maximize_capacity_coordinate_ascent(net, beta);
  const auto interior = maximize_capacity_gradient_ascent(
      net, beta, std::vector<double>(net.size(), 0.5));
  EXPECT_GE(vertex.value + 1e-6, interior.value);
}

TEST(CoordinateAscent, MatchesExhaustiveOnTinyInstance) {
  // n = 8: enumerate all 2^8 vertices; by multilinearity the best vertex is
  // the global optimum over [0,1]^8.
  auto net = paper_network(8, 13);
  const double beta = 2.5;
  double best = 0.0;
  for (unsigned mask = 0; mask < 256u; ++mask) {
    std::vector<double> q(8, 0.0);
    for (int b = 0; b < 8; ++b) {
      if (mask & (1u << b)) q[b] = 1.0;
    }
    best = std::max(best, core::expected_rayleigh_successes(net, units::probabilities(q), units::Threshold(beta)));
  }
  CoordinateAscentOptions opts;
  opts.restarts = 6;
  const auto result = maximize_capacity_coordinate_ascent(net, beta, opts);
  EXPECT_NEAR(result.value, best, 1e-9);
}

TEST(CoordinateAscent, RayleighOptimumAtLeastNonFadingTransfer) {
  // The Rayleigh optimum over q dominates the value of transmitting the
  // non-fading greedy set (that set is one feasible q).
  auto net = paper_network(20, 30);
  const double beta = 2.5;
  const auto greedy = greedy_capacity(net, beta);
  std::vector<double> q(net.size(), 0.0);
  for (LinkId i : greedy.selected) q[i] = 1.0;
  const double transferred =
      core::expected_rayleigh_successes(net, units::probabilities(q), units::Threshold(beta));
  CoordinateAscentOptions opts;
  opts.restarts = 4;
  const auto opt = maximize_capacity_coordinate_ascent(net, beta, opts);
  EXPECT_GE(opt.value + 1e-9, transferred);
}

TEST(Probabilistic, ValidatesInput) {
  auto net = hand_matrix_network();
  EXPECT_THROW(expected_capacity_gradient(net, {0.5}, 1.0), raysched::error);
  EXPECT_THROW(expected_capacity_gradient(net, {0.5, 0.5, 0.5}, 0.0),
               raysched::error);
  GradientAscentOptions bad;
  bad.step = 0.0;
  EXPECT_THROW(maximize_capacity_gradient_ascent(
                   net, 1.0, {0.5, 0.5, 0.5}, bad),
               raysched::error);
}

}  // namespace
}  // namespace raysched::algorithms
