// Cross-compiler bit-identity pins for the Theorem-1 numerics.
//
// The build pins the math core to two-rounding IEEE semantics
// (-ffp-contract=off via cmake/FpDeterminism.cmake), which makes every
// Theorem-1 evaluation path a pure function of its inputs down to the last
// bit — on GCC and Clang alike. This suite holds that property to account:
//
//  * committed bit-pattern goldens for the scalar, batched, incremental,
//    and log-space evaluators over a closed-form network (no RNG, so the
//    inputs themselves are bit-deterministic);
//  * the scalar log companion is bit-identical to the kernel's
//    evaluate_log (same expressions, same iteration order — the contract
//    documented in core/success_probability.hpp);
//  * threaded evaluation through the pool executor is bit-identical to
//    serial (chunking never changes per-element arithmetic);
//  * the underflow boundary: above it exp(log) agrees with the linear
//    product at ulp scale, below it the linear product is exactly 0 while
//    the log form stays finite (the RS-N4 escape hatch).
//
// If a golden moves, a compiler or flag change altered FP semantics —
// treat it like a broken regression pin, not a tolerance to widen.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/success_probability.hpp"
#include "core/success_probability_batch.hpp"
#include "model/network.hpp"
#include "sim/batch_executor.hpp"
#include "sim/thread_pool.hpp"
#include "util/units.hpp"

namespace raysched::core {
namespace {

using model::LinkId;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

constexpr std::size_t kLinks = 8;
constexpr double kBeta = 1.5;

/// Closed-form gain matrix: every entry is one exact literal or one IEEE
/// division of small integers, so the network is bit-identical on every
/// conforming platform without involving the RNG.
model::Network golden_network() {
  std::vector<double> gains(kLinks * kLinks);
  for (std::size_t j = 0; j < kLinks; ++j) {
    for (std::size_t i = 0; i < kLinks; ++i) {
      gains[j * kLinks + i] =
          j == i ? 8.0 + static_cast<double>(i)
                 : 1.0 / (1.0 + static_cast<double>(3 * j + i));
    }
  }
  return model::Network(kLinks, gains, units::Power(0.05));
}

/// Probability profile with exact-zero entries (links 0 and 5), exercising
/// the sentinel skip branches in every evaluator.
units::ProbabilityVector golden_q() {
  std::vector<double> q(kLinks);
  for (std::size_t i = 0; i < kLinks; ++i) {
    q[i] = static_cast<double>(i % 5) * 0.2;
  }
  return units::probabilities(q);
}

// Golden bit patterns, generated once from this harness and committed.
// All four arrays must reproduce exactly under GCC and Clang. The
// incremental array legitimately differs from the batch array by one ulp
// at links 2 and 6: the product forest multiplies in balanced-tree order,
// the one-shot pass in sequential order.
constexpr std::uint64_t kGoldenScalar[kLinks] = {
    0x0000000000000000, 0x3fc89baa2aa1b9c7, 0x3fd8cd357750cefc,
    0x3fe2b3f179838ed5, 0x3fe909fc6860f666, 0x0000000000000000,
    0x3fc912d9369605ad, 0x3fd9253ea9801b33};
constexpr std::uint64_t kGoldenBatch[kLinks] = {
    0x0000000000000000, 0x3fc89baa2aa1b9c7, 0x3fd8cd357750cefc,
    0x3fe2b3f179838ed5, 0x3fe909fc6860f666, 0x0000000000000000,
    0x3fc912d9369605ad, 0x3fd9253ea9801b33};
constexpr std::uint64_t kGoldenIncremental[kLinks] = {
    0x0000000000000000, 0x3fc89baa2aa1b9c7, 0x3fd8cd357750cefb,
    0x3fe2b3f179838ed5, 0x3fe909fc6860f666, 0x0000000000000000,
    0x3fc912d9369605ac, 0x3fd9253ea9801b33};
constexpr std::uint64_t kGoldenLog[kLinks] = {
    0xfff0000000000000, 0xbffa621fb481add6, 0xbfee55cfbd0abfa6,
    0xbfe12f926fbdb666, 0xbfcf6605d155bb5f, 0xfff0000000000000,
    0xbffa155af37bd165, 0xbfede5011bef10ad};

TEST(FpDeterminism, ScalarGoldenBits) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  for (LinkId i = 0; i < net.size(); ++i) {
    const double v =
        rayleigh_success_probability(net, q, i, units::Threshold(kBeta))
            .value();
    EXPECT_EQ(bits(v), kGoldenScalar[i])
        << "scalar golden moved at link " << i << ": 0x" << std::hex
        << bits(v);
  }
}

TEST(FpDeterminism, BatchGoldenBits) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  SuccessProbabilityKernel kernel(net, units::Threshold(kBeta));
  const std::vector<double> batch = kernel.evaluate(q);
  for (std::size_t i = 0; i < kLinks; ++i) {
    EXPECT_EQ(bits(batch[i]), kGoldenBatch[i])
        << "batch golden moved at link " << i << ": 0x" << std::hex
        << bits(batch[i]);
  }
}

TEST(FpDeterminism, IncrementalGoldenBits) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  SuccessProbabilityKernel kernel(net, units::Threshold(kBeta));
  kernel.set_probabilities(q);
  const std::vector<double>& inc = kernel.success_probabilities();
  for (std::size_t i = 0; i < kLinks; ++i) {
    EXPECT_EQ(bits(inc[i]), kGoldenIncremental[i])
        << "incremental golden moved at link " << i << ": 0x" << std::hex
        << bits(inc[i]);
  }
}

TEST(FpDeterminism, LogGoldenBits) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  SuccessProbabilityKernel kernel(net, units::Threshold(kBeta));
  const std::vector<double> lg = kernel.evaluate_log(q);
  for (std::size_t i = 0; i < kLinks; ++i) {
    EXPECT_EQ(bits(lg[i]), kGoldenLog[i])
        << "log golden moved at link " << i << ": 0x" << std::hex
        << bits(lg[i]);
  }
}

// The scalar log companion promises bit-identity with the kernel's
// evaluate_log (core/success_probability.hpp); -inf entries (q_i == 0)
// compare equal by bit pattern too.
TEST(FpDeterminism, ScalarLogMatchesKernelLogBitwise) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  SuccessProbabilityKernel kernel(net, units::Threshold(kBeta));
  const std::vector<double> klog = kernel.evaluate_log(q);
  for (LinkId i = 0; i < net.size(); ++i) {
    const double slog =
        rayleigh_success_log_probability(net, q, i, units::Threshold(kBeta));
    EXPECT_EQ(bits(slog), bits(klog[i])) << "log paths split at link " << i;
  }
}

// A perturb-and-restore update_link chain must land back on the
// from-scratch set_probabilities values exactly.
TEST(FpDeterminism, UpdateLinkRoundTripIsBitExact) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  SuccessProbabilityKernel fresh(net, units::Threshold(kBeta));
  fresh.set_probabilities(q);
  const std::vector<double> reference = fresh.success_probabilities();

  SuccessProbabilityKernel walked(net, units::Threshold(kBeta));
  walked.set_probabilities(q);
  walked.update_link(3, units::Probability(0.9));
  walked.update_link(1, units::Probability(0.0));
  walked.update_link(3, q[3]);
  walked.update_link(1, q[1]);
  const std::vector<double>& restored = walked.success_probabilities();
  for (std::size_t i = 0; i < kLinks; ++i) {
    EXPECT_EQ(bits(restored[i]), bits(reference[i]))
        << "update_link drifted at link " << i;
  }
}

TEST(FpDeterminism, ThreadedEvaluationBitIdenticalToSerial) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  SuccessProbabilityKernel serial(net, units::Threshold(kBeta));
  const std::vector<double> want = serial.evaluate(q);
  const std::vector<double> want_log = serial.evaluate_log(q);

  sim::ThreadPool pool(4);
  SuccessProbabilityKernel threaded(net, units::Threshold(kBeta),
                                    sim::pool_batch_executor(pool, 1));
  const std::vector<double> got = threaded.evaluate(q);
  const std::vector<double> got_log = threaded.evaluate_log(q);
  for (std::size_t i = 0; i < kLinks; ++i) {
    EXPECT_EQ(bits(got[i]), bits(want[i])) << "threaded linear at " << i;
    EXPECT_EQ(bits(got_log[i]), bits(want_log[i]))
        << "threaded log at " << i;
  }
}

/// Saturated-interference network: every off-diagonal factor is ~1e-15, so
/// the 23-interferer product sits ~1e-345, below the smallest subnormal —
/// the linear form underflows to exact 0 while the log form stays
/// comfortably finite. (1e15 and not 1e16: c = g/(g+1) must stay strictly
/// below 1.0 after rounding, and 1e16 + 1 rounds back to 1e16.)
model::Network underflow_network(std::size_t n) {
  std::vector<double> gains(n * n, 1.0e15);
  for (std::size_t i = 0; i < n; ++i) gains[i * n + i] = 1.0;
  return model::Network(n, gains, units::Power(1.0e-3));
}

TEST(FpDeterminism, LinearAndLogAgreeAboveUnderflow) {
  const model::Network net = golden_network();
  const units::ProbabilityVector q = golden_q();
  SuccessProbabilityKernel kernel(net, units::Threshold(kBeta));
  const std::vector<double> linear = kernel.evaluate(q);
  const std::vector<double> lg = kernel.evaluate_log(q);
  for (std::size_t i = 0; i < kLinks; ++i) {
    if (linear[i] == 0.0) {
      EXPECT_EQ(lg[i], -std::numeric_limits<double>::infinity())
          << "zero linear value must mean q_i == 0 here, link " << i;
      continue;
    }
    EXPECT_NEAR(std::exp(lg[i]), linear[i], linear[i] * 1e-12)
        << "log and linear paths disagree above the boundary, link " << i;
  }
}

TEST(FpDeterminism, LogStaysFiniteBelowUnderflow) {
  constexpr std::size_t n = 24;
  const model::Network net = underflow_network(n);
  const units::ProbabilityVector q =
      units::uniform_probabilities(n, units::Probability(1.0));
  const units::Threshold beta(1.0);

  SuccessProbabilityKernel kernel(net, beta);
  const std::vector<double> linear = kernel.evaluate(q);
  const std::vector<double> lg = kernel.evaluate_log(q);
  for (LinkId i = 0; i < n; ++i) {
    // The linear product underflows to exact zero...
    EXPECT_EQ(linear[i], 0.0) << "expected underflow at link " << i;
    EXPECT_EQ(
        bits(rayleigh_success_probability(net, q, i, beta).value()),
        bits(linear[i]))
        << "scalar and batch disagree in the underflow regime, link " << i;
    // ...while the log form stays finite, deep below log(DBL_MIN), and
    // bit-identical between the scalar companion and the kernel.
    EXPECT_TRUE(std::isfinite(lg[i])) << "log underflowed at link " << i;
    EXPECT_LT(lg[i], -710.0);
    EXPECT_EQ(bits(rayleigh_success_log_probability(net, q, i, beta)),
              bits(lg[i]))
        << "log paths split in the underflow regime, link " << i;
    // Round-tripping through exp reproduces the underflow consistently.
    EXPECT_EQ(std::exp(lg[i]), 0.0);
  }
}

}  // namespace
}  // namespace raysched::core
