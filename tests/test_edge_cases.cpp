// Edge cases and degenerate instances across the library: single links,
// empty sets, boundary thresholds, extreme magnitudes, and pathological
// geometries. Every behavior here is intentional and documented by the
// assertions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "test_helpers.hpp"

namespace raysched {
namespace {

using model::Link;
using model::LinkSet;
using model::Network;
using model::Point;

Network single_link_network(double noise) {
  std::vector<Link> links = {{Point{0, 0}, Point{1, 0}}};
  return Network(std::move(links), model::PowerAssignment::uniform(1.0), 2.0,
                 units::Power(noise));
}

// ---------------------------------------------------------------------------
// Single-link networks.
// ---------------------------------------------------------------------------

TEST(EdgeSingleLink, SinrAgainstNoiseOnly) {
  auto net = single_link_network(0.25);
  EXPECT_DOUBLE_EQ(model::sinr_nonfading(net, {0}, 0), 4.0);
  EXPECT_TRUE(model::is_feasible(net, {0}, units::Threshold(4.0)));
  EXPECT_FALSE(model::is_feasible(net, {0}, units::Threshold(4.0 + 1e-12)));
}

TEST(EdgeSingleLink, GreedySelectsOrSkips) {
  auto net = single_link_network(0.25);
  EXPECT_EQ(algorithms::greedy_capacity(net, 3.9).selected.size(), 1u);
  EXPECT_EQ(algorithms::greedy_capacity(net, 4.1).selected.size(), 0u);
}

TEST(EdgeSingleLink, RayleighClosedForm) {
  auto net = single_link_network(0.25);
  EXPECT_NEAR(model::success_probability_rayleigh(net, {0}, 0, units::Threshold(4.0)).value(),
              std::exp(-1.0), 1e-12);
}

TEST(EdgeSingleLink, ExactOptAndBnB) {
  auto net = single_link_network(0.25);
  EXPECT_EQ(algorithms::exact_max_feasible_set(net, 3.0).selected,
            (LinkSet{0}));
  EXPECT_TRUE(algorithms::exact_max_feasible_set(net, 5.0).selected.empty());
}

TEST(EdgeSingleLink, LatencyOneSlotNonFading) {
  auto net = single_link_network(0.25);
  util::RngStream rng(1);
  const auto result = algorithms::repeated_capacity_schedule(
      net, 3.0, algorithms::Propagation::NonFading, rng);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.slots, 1u);
}

TEST(EdgeSingleLink, GameConvergesToSend) {
  auto net = single_link_network(0.1);  // SINR alone = 10 > beta
  learning::GameOptions opts;
  opts.rounds = 100;
  opts.beta = 2.0;
  util::RngStream rng(2);
  const auto result = learning::run_capacity_game(
      net, opts, [] { return std::make_unique<learning::RwmLearner>(); }, rng);
  EXPECT_GT(result.successes_per_round.back(), 0.0);
}

// ---------------------------------------------------------------------------
// Empty sets.
// ---------------------------------------------------------------------------

TEST(EdgeEmptySet, EverythingDegradesGracefully) {
  auto net = raysched::testing::paper_network(5, 1);
  EXPECT_TRUE(model::is_feasible(net, {}, units::Threshold(1.0)));
  EXPECT_EQ(model::count_successes_nonfading(net, {}, units::Threshold(1.0)), 0u);
  EXPECT_DOUBLE_EQ(model::expected_successes_rayleigh(net, {}, units::Threshold(1.0)), 0.0);
  util::RngStream rng(1);
  EXPECT_EQ(model::count_successes_rayleigh(net, {}, units::Threshold(1.0), rng), 0u);
  EXPECT_DOUBLE_EQ(model::total_affectance_on(net, {}, 0, units::Threshold(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(model::interference_spectral_radius(net, {}, units::Threshold(1.0)), 0.0);
}

// ---------------------------------------------------------------------------
// Threshold boundary exactness: SINR == beta counts as success everywhere.
// ---------------------------------------------------------------------------

TEST(EdgeBoundary, ExactThresholdIsInclusiveAcrossApis) {
  auto net = raysched::testing::hand_matrix_network(0.1);
  const LinkSet all = {0, 1, 2};
  const double gamma0 = model::sinr_nonfading(net, all, 0);
  EXPECT_TRUE(model::is_feasible(
      net, {0}, units::Threshold(model::sinr_nonfading(net, {0}, 0))));
  EXPECT_EQ(model::successful_links_nonfading(net, all, units::Threshold(gamma0)).front(), 0u);
  const core::Utility u = core::Utility::binary(units::Threshold(gamma0));
  EXPECT_DOUBLE_EQ(u.value(gamma0), 1.0);
}

TEST(EdgeBoundary, AffectanceExactlyOneIsFeasible) {
  // Construct interference such that total raw affectance == 1 exactly:
  // SINR == beta precisely, feasible by the inclusive convention.
  auto net = raysched::testing::hand_matrix_network(0.0);
  const LinkSet pair = {0, 1};
  const double gamma = model::sinr_nonfading(net, pair, 0);
  EXPECT_NEAR(model::total_affectance_on_raw(net, pair, 0, units::Threshold(gamma)), 1.0, 1e-12);
  EXPECT_TRUE(model::is_feasible(net, pair, units::Threshold(gamma)));
}

// ---------------------------------------------------------------------------
// Extreme magnitudes: tiny gains, huge noise, huge beta.
// ---------------------------------------------------------------------------

TEST(EdgeExtremes, TinyGainsStayFinite) {
  std::vector<double> gains = {1e-300, 0.0, 0.0, 1e-300};
  Network net(2, gains, units::Power(1e-310));
  const double g = model::sinr_nonfading(net, {0, 1}, 0);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_GT(g, 1.0);  // noise far below signal
  EXPECT_GT(model::success_probability_rayleigh(net, {0, 1}, 0, units::Threshold(1.0)).value(), 0.0);
}

TEST(EdgeExtremes, HugeBetaProbabilityUnderflowsToZeroNotNan) {
  auto net = raysched::testing::hand_matrix_network(1.0);
  const double p =
      model::success_probability_rayleigh(net, {0, 1, 2}, 0, units::Threshold(1e6)).value();
  EXPECT_GE(p, 0.0);
  EXPECT_FALSE(std::isnan(p));
  EXPECT_LT(p, 1e-6);
}

TEST(EdgeExtremes, NoiseDominatedEverythingEmpty) {
  // Noise ~2x the strongest signal: no link reaches beta = 2.5 even alone
  // in the non-fading model, yet the Rayleigh probability stays positive
  // (with vastly larger noise it would underflow to exactly 0 in double
  // precision — mathematically positive, numerically zero).
  auto net = raysched::testing::paper_network(10, 3, 2.2, /*noise=*/5e-3);
  EXPECT_TRUE(algorithms::greedy_capacity(net, 2.5).selected.empty());
  EXPECT_TRUE(
      algorithms::exact_max_feasible_set(net, 2.5, 10).selected.empty());
  // The Rayleigh model still gives positive (if tiny) success probability —
  // the paper's motivating asymmetry.
  EXPECT_GT(model::success_probability_rayleigh(net, {0}, 0, units::Threshold(2.5)).value(), 0.0);
}

// ---------------------------------------------------------------------------
// Identical / symmetric links via the matrix constructor.
// ---------------------------------------------------------------------------

TEST(EdgeSymmetric, FullySymmetricPairSplitsEvenly) {
  // Two links with identical gains: S(i,i) = 4, S(j,i) = 1, no noise.
  std::vector<double> gains = {4.0, 1.0, 1.0, 4.0};
  Network net(2, gains, units::Power(0.0));
  // Together: SINR = 4 for both; feasible at beta <= 4.
  EXPECT_TRUE(model::is_feasible(net, {0, 1}, units::Threshold(4.0)));
  EXPECT_FALSE(model::is_feasible(net, {0, 1}, units::Threshold(4.5)));
  // Rayleigh success probabilities identical by symmetry.
  EXPECT_DOUBLE_EQ(model::success_probability_rayleigh(net, {0, 1}, 0, units::Threshold(2.0)).value(),
                   model::success_probability_rayleigh(net, {0, 1}, 1, units::Threshold(2.0)).value());
  // Coordinate-ascent optimum at beta where both fit selects both.
  const auto opt = algorithms::maximize_capacity_coordinate_ascent(net, 1.0);
  EXPECT_DOUBLE_EQ(opt.q[0], 1.0);
  EXPECT_DOUBLE_EQ(opt.q[1], 1.0);
}

TEST(EdgeSymmetric, AsymmetricGainsAreHandledDirectionally) {
  // Link 0 hurts link 1 but not vice versa.
  std::vector<double> gains = {10.0, 100.0, 0.0, 10.0};
  Network net(2, gains, units::Power(0.0));
  EXPECT_TRUE(std::isinf(model::sinr_nonfading(net, {0, 1}, 0)));  // no inter.
  EXPECT_DOUBLE_EQ(model::sinr_nonfading(net, {0, 1}, 1), 0.1);
  EXPECT_DOUBLE_EQ(model::affectance_raw(net, 1, 0, units::Threshold(1.0)), 0.0);
  EXPECT_GT(model::affectance_raw(net, 0, 1, units::Threshold(1.0)), 1.0);
}

// ---------------------------------------------------------------------------
// Utility edge cases.
// ---------------------------------------------------------------------------

TEST(EdgeUtility, ZeroWeightIsValidAndWorthless) {
  const core::Utility u = core::Utility::weighted(units::Threshold(1.0), 0.0);
  EXPECT_DOUBLE_EQ(u.value(5.0), 0.0);
  auto net = raysched::testing::paper_network(10, 4);
  const auto result = algorithms::weighted_greedy_capacity(
      net, 1.0, std::vector<double>(10, 0.0));
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(EdgeUtility, ShannonAtInfinitySinr) {
  // Infinite SINR (no noise, no interference) is representable; Shannon
  // utility is infinite there, binary utility is 1.
  const core::Utility shannon = core::Utility::shannon();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isinf(shannon.value(inf)));
  EXPECT_DOUBLE_EQ(core::Utility::binary(units::Threshold(2.0)).value(inf), 1.0);
}

// ---------------------------------------------------------------------------
// Probability-vector edge cases.
// ---------------------------------------------------------------------------

TEST(EdgeProbabilities, AllZeroAndAllOne) {
  auto net = raysched::testing::paper_network(8, 5);
  std::vector<double> zeros(8, 0.0), ones(8, 1.0);
  EXPECT_DOUBLE_EQ(core::expected_rayleigh_successes(net, units::probabilities(zeros), units::Threshold(2.5)), 0.0);
  LinkSet all;
  for (model::LinkId i = 0; i < 8; ++i) all.push_back(i);
  EXPECT_NEAR(core::expected_rayleigh_successes(net, units::probabilities(ones), units::Threshold(2.5)),
              model::expected_successes_rayleigh(net, all, units::Threshold(2.5)), 1e-12);
  const auto schedule = core::build_simulation_schedule(net, units::probabilities(zeros));
  for (const auto& level : schedule.levels) {
    for (units::Probability p : level.probabilities) {
      EXPECT_DOUBLE_EQ(p.value(), 0.0);
    }
  }
}

TEST(EdgeProbabilities, GradientAtAllOnesPointsInward) {
  // At q = 1 everywhere on a congested instance, some coordinate should
  // have a negative derivative (dropping a link increases capacity).
  auto net = raysched::testing::two_close_links(1e-6);
  const auto grad =
      algorithms::expected_capacity_gradient(net, {1.0, 1.0}, 5.0);
  EXPECT_TRUE(grad[0] < 0.0 || grad[1] < 0.0);
}

// ---------------------------------------------------------------------------
// Rejection paths: every public entry point must throw raysched::error on
// out-of-range q, non-positive beta, and poisoned (NaN/Inf) gain matrices,
// rather than propagate garbage into the closed forms.
// ---------------------------------------------------------------------------

TEST(EdgeRejection, OutOfRangeProbabilityVectors) {
  auto net = raysched::testing::hand_matrix_network();
  const std::vector<double> too_short = {0.5, 0.5};
  const std::vector<double> negative = {0.5, -0.1, 0.5};
  const std::vector<double> above_one = {0.5, 1.1, 0.5};
  const std::vector<double> nan_entry = {
      0.5, std::numeric_limits<double>::quiet_NaN(), 0.5};
  for (const auto& bad : {too_short, negative, above_one, nan_entry}) {
    EXPECT_THROW(core::validate_probabilities(net, units::probabilities(bad)), raysched::error);
    EXPECT_THROW(core::rayleigh_success_probability(net, units::probabilities(bad), 0, units::Threshold(2.0)),
                 raysched::error);
    EXPECT_THROW(core::rayleigh_success_lower_bound(net, units::probabilities(bad), 0, units::Threshold(2.0)),
                 raysched::error);
    EXPECT_THROW(core::rayleigh_success_upper_bound(net, units::probabilities(bad), 0, units::Threshold(2.0)),
                 raysched::error);
    EXPECT_THROW(core::interference_weight(net, units::probabilities(bad), 0, units::Threshold(2.0)), raysched::error);
    EXPECT_THROW(core::build_simulation_schedule(net, units::probabilities(bad)), raysched::error);
    EXPECT_THROW(core::nonfading_success_probability_exact(net, units::probabilities(bad), 0, units::Threshold(2.0)),
                 raysched::error);
  }
}

TEST(EdgeRejection, NonPositiveBetaAcrossEntryPoints) {
  auto net = raysched::testing::hand_matrix_network();
  const std::vector<double> q(3, 0.5);
  util::RngStream rng(7);
  for (double beta : {0.0, -2.5}) {
    EXPECT_THROW(core::rayleigh_success_probability(net, units::probabilities(q), 0, units::Threshold(beta)),
                 raysched::error);
    EXPECT_THROW(core::rayleigh_success_lower_bound(net, units::probabilities(q), 0, units::Threshold(beta)),
                 raysched::error);
    EXPECT_THROW(core::rayleigh_success_upper_bound(net, units::probabilities(q), 0, units::Threshold(beta)),
                 raysched::error);
    EXPECT_THROW(core::interference_weight(net, units::probabilities(q), 0, units::Threshold(beta)), raysched::error);
    EXPECT_THROW(core::nonfading_success_probability_mc(net, units::probabilities(q), 0, units::Threshold(beta), 10, rng),
                 raysched::error);
    EXPECT_THROW(core::aloha_slot_success_probabilities(net, units::Probability(0.5), units::Threshold(beta)),
                 raysched::error);
    EXPECT_THROW(model::affectance_raw(net, 0, 1, units::Threshold(beta)), raysched::error);
    EXPECT_THROW(algorithms::greedy_capacity(net, beta), raysched::error);
  }
}

TEST(EdgeRejection, NanAndInfGainMatricesAreRejected) {
  // NaN gains fail the >= 0 requirement in the matrix constructor (NaN
  // comparisons are false), so they are rejected unconditionally.
  std::vector<double> gains = {10.0, 1.0, 1.0, 10.0};
  auto nan_gains = gains;
  nan_gains[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(model::Network(2, nan_gains, units::Power(0.1)), raysched::error);
  auto nan_diag = gains;
  nan_diag[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(model::Network(2, nan_diag, units::Power(0.1)), raysched::error);
#if defined(RAYSCHED_CONTRACTS)
  // Inf gains pass the sign check; the finite-gains contract catches them.
  auto inf_gains = gains;
  inf_gains[2] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(model::Network(2, inf_gains, units::Power(0.1)), raysched::contract_violation);
#endif
}

TEST(EdgeRejection, NanAffectanceInputsCannotReachTheSums) {
  // The only way to a NaN affectance is a poisoned network; with matrix
  // construction rejecting NaN/Inf, affectance stays NaN-free for every
  // feasible-budget input, including the deliberately infinite case.
  auto net = raysched::testing::hand_matrix_network(/*noise=*/0.1);
  for (double beta : {0.5, 2.0, 1000.0}) {
    const double a = model::affectance_raw(net, 0, 1, units::Threshold(beta));
    EXPECT_FALSE(std::isnan(a));
    EXPECT_GE(a, 0.0);  // +inf allowed: link infeasible even alone
  }
}

}  // namespace
}  // namespace raysched
