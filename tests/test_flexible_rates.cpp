// Tests for per-link flexible data rates (Kesselheim [22]-style) and the
// per-link-threshold affectance supporting it.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::algorithms {
namespace {

using model::LinkId;
using model::LinkSet;
using raysched::testing::paper_network;
using raysched::testing::two_far_links;

TEST(PerLinkAffectance, MatchesGlobalWhenBetasEqual) {
  auto net = paper_network(10, 1);
  const double beta = 2.5;
  std::vector<double> betas(net.size(), beta);
  for (LinkId j = 0; j < 4; ++j) {
    for (LinkId i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(model::affectance_raw_per_link(net, j, i, units::thresholds(betas)),
                       model::affectance_raw(net, j, i, units::Threshold(beta)));
    }
  }
}

TEST(PerLinkAffectance, HigherTargetMeansSmallerBudget) {
  auto net = paper_network(10, 2);
  std::vector<double> low(net.size(), 0.5), high(net.size(), 5.0);
  EXPECT_LT(model::affectance_raw_per_link(net, 1, 0, units::thresholds(low)),
            model::affectance_raw_per_link(net, 1, 0, units::thresholds(high)));
}

TEST(PerLinkFeasibility, MixedThresholds) {
  auto net = two_far_links(1e-6);
  std::vector<double> betas = {2.0, 1000.0};
  // Link 1 cannot reach SINR 1000 against link 0's interference + noise?
  // Its alone-SINR vs the far interferer is ~10001/1 = huge; so pick an even
  // larger threshold via noise: alone-SINR vs noise = 1/1e-6 = 1e6. The
  // interference from link 0 at link 1 is 1/10001^(1) ... compute directly:
  const LinkSet both = {0, 1};
  const double sinr1 = model::sinr_nonfading(net, both, 1);
  betas[1] = sinr1 * 1.01;  // just above: infeasible
  EXPECT_FALSE(model::is_feasible_per_link(net, both, units::thresholds(betas)));
  betas[1] = sinr1 * 0.99;  // just below: feasible
  EXPECT_TRUE(model::is_feasible_per_link(net, both, units::thresholds(betas)));
}

TEST(PerLinkFeasibility, ValidatesSizes) {
  auto net = paper_network(5, 3);
  EXPECT_THROW(model::is_feasible_per_link(net, {0}, units::thresholds({1.0})), raysched::error);
  EXPECT_THROW(model::affectance_raw_per_link(net, 0, 1, units::thresholds({1.0, 1.0})),
               raysched::error);
}

TEST(FlexiblePerLink, AssignmentIsCertifiedFeasible) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto net = paper_network(40, 100 + seed);
    const auto result = flexible_rate_capacity_per_link(
        net, core::Utility::shannon(), 0.25, 16.0, 8);
    EXPECT_TRUE(
        model::is_feasible_per_link(net, result.selected,
                                    units::thresholds_or_placeholder(result.betas)))
        << "seed " << seed;
    // Every selected link meets its own class; unselected links carry 0.
    for (LinkId i = 0; i < net.size(); ++i) {
      const bool in_set = std::find(result.selected.begin(),
                                    result.selected.end(),
                                    i) != result.selected.end();
      EXPECT_EQ(result.betas[i] > 0.0, in_set) << "link " << i;
    }
  }
}

TEST(FlexiblePerLink, AchievedSinrMeetsAssignedClass) {
  auto net = paper_network(30, 9);
  const auto result = flexible_rate_capacity_per_link(
      net, core::Utility::shannon(), 0.5, 8.0, 6);
  const auto sinrs = model::sinr_nonfading_all(net, result.selected);
  for (std::size_t a = 0; a < result.selected.size(); ++a) {
    EXPECT_GE(sinrs[a], result.betas[result.selected[a]] - 1e-9);
  }
}

TEST(FlexiblePerLink, ValueAtLeastUtilityOfAssignedClasses) {
  auto net = paper_network(30, 10);
  const core::Utility u = core::Utility::shannon();
  const auto result = flexible_rate_capacity_per_link(net, u, 0.5, 8.0, 6);
  double class_value = 0.0;
  for (LinkId i : result.selected) class_value += u.value(result.betas[i]);
  EXPECT_GE(result.value + 1e-9, class_value);
}

TEST(FlexiblePerLink, DominatesGlobalSweepForShannon) {
  // The starting-class sweep includes every pure single-class run, so on
  // the same class grid the per-link algorithm dominates the global
  // threshold sweep instance by instance.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto net = paper_network(40, 500 + seed);
    const core::Utility u = core::Utility::shannon();
    const double per_link =
        flexible_rate_capacity_per_link(net, u, 0.25, 16.0, 10).value;
    const double global = flexible_rate_capacity(net, u, 0.25, 16.0, 10).value;
    EXPECT_GE(per_link + 1e-9, global) << "seed " << seed;
  }
}

TEST(FlexiblePerLink, SingleClassReducesToGreedyBehavior) {
  auto net = paper_network(25, 11);
  const double beta = 2.5;
  const auto per_link = flexible_rate_capacity_per_link(
      net, core::Utility::binary(units::Threshold(beta)), beta, beta, 1);
  const auto greedy = greedy_capacity(net, beta);
  // Same admission rule, same order: identical sets.
  EXPECT_EQ(per_link.selected, greedy.selected);
}

TEST(FlexiblePerLink, TransfersThroughLemma2ClassWise) {
  // Each selected link succeeds at its own class threshold with probability
  // >= 1/e under Rayleigh (Lemma 2 applies per link at beta_i <= sinr_i).
  auto net = paper_network(30, 12);
  const auto result = flexible_rate_capacity_per_link(
      net, core::Utility::shannon(), 0.5, 8.0, 6);
  for (LinkId i : result.selected) {
    const double p = model::success_probability_rayleigh(
        net, result.selected, i, units::Threshold(result.betas[i])).value();
    EXPECT_GE(p, 1.0 / std::exp(1.0) - 1e-9) << "link " << i;
  }
}

TEST(FlexiblePerLink, ValidatesArguments) {
  auto net = paper_network(5, 13);
  const core::Utility u = core::Utility::shannon();
  EXPECT_THROW(flexible_rate_capacity_per_link(net, u, 0.0, 1.0),
               raysched::error);
  EXPECT_THROW(flexible_rate_capacity_per_link(net, u, 2.0, 1.0),
               raysched::error);
  EXPECT_THROW(flexible_rate_capacity_per_link(net, u, 1.0, 2.0, 0),
               raysched::error);
  EXPECT_THROW(flexible_rate_capacity_per_link(net, u, 1.0, 2.0, 4, 1.5),
               raysched::error);
}

}  // namespace
}  // namespace raysched::algorithms
