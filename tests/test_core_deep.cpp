// Second-order behavior of the core reduction machinery: sensitivity of
// Theorem-1 probabilities, simulation-schedule scaling, transfer under
// re-powering, and cross-checks between the closed forms and each other.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::core {
namespace {

using model::LinkId;
using model::LinkSet;
using raysched::testing::hand_matrix_network;
using raysched::testing::paper_network;

// ---------------------------------------------------------------------------
// Theorem 1 sensitivity and factorization.
// ---------------------------------------------------------------------------

TEST(CoreDeep, Theorem1FactorsMultiplicativelyOverInterferers) {
  // Q_i with interferers {a, b} equals Q_i with {a} times the b-factor:
  // the product form is exactly separable.
  auto net = hand_matrix_network(0.0);
  const double beta = 1.5;
  const std::vector<double> q_both = {1.0, 0.7, 0.4};
  const std::vector<double> q_only1 = {1.0, 0.7, 0.0};
  const std::vector<double> q_only2 = {1.0, 0.0, 0.4};
  const double base = 1.0;  // exp(0) with zero noise
  const double p_both = rayleigh_success_probability(net, units::probabilities(q_both), 0, units::Threshold(beta)).value();
  const double p1 = rayleigh_success_probability(net, units::probabilities(q_only1), 0, units::Threshold(beta)).value();
  const double p2 = rayleigh_success_probability(net, units::probabilities(q_only2), 0, units::Threshold(beta)).value();
  EXPECT_NEAR(p_both, p1 * p2 / base, 1e-12);
}

TEST(CoreDeep, Theorem1MonotoneInEachProbability) {
  auto net = paper_network(10, 21);
  std::vector<double> q(net.size(), 0.5);
  const double beta = 2.5;
  const double base = rayleigh_success_probability(net, units::probabilities(q), 0, units::Threshold(beta)).value();
  // Raising an interferer's probability lowers Q_0; raising q_0 raises it.
  q[1] = 0.9;
  EXPECT_LE(rayleigh_success_probability(net, units::probabilities(q), 0, units::Threshold(beta)).value(), base);
  q[1] = 0.5;
  q[0] = 0.9;
  EXPECT_GT(rayleigh_success_probability(net, units::probabilities(q), 0, units::Threshold(beta)).value(), base);
}

TEST(CoreDeep, UpperBoundTightensAsGainRatioShrinks) {
  // Lemma 1's upper bound replaces each factor by exp(-min{1/2, x/2} q):
  // for weak interferers (x << 1) the bound is near-exact per factor.
  auto net = paper_network(20, 22);
  std::vector<double> q(net.size(), 1.0);
  // Use a beta so small that every beta*S(j,i)/S(i,i) << 1.
  const double beta = 1e-4;
  for (LinkId i = 0; i < 5; ++i) {
    const double exact = rayleigh_success_probability(net, units::probabilities(q), i, units::Threshold(beta)).value();
    const double hi = rayleigh_success_upper_bound(net, units::probabilities(q), i, units::Threshold(beta)).value();
    EXPECT_NEAR(hi / exact, 1.0, 1e-3) << "link " << i;
  }
}

// ---------------------------------------------------------------------------
// Simulation schedule scaling.
// ---------------------------------------------------------------------------

TEST(CoreDeep, SimulationProbabilitiesScaleLinearlyWithQ) {
  auto net = paper_network(12, 23);
  std::vector<double> q(net.size(), 0.8), half(net.size(), 0.4);
  const auto s1 = build_simulation_schedule(net, units::probabilities(q));
  const auto s2 = build_simulation_schedule(net, units::probabilities(half));
  ASSERT_EQ(s1.levels.size(), s2.levels.size());
  for (std::size_t k = 0; k < s1.levels.size(); ++k) {
    for (std::size_t i = 0; i < net.size(); ++i) {
      EXPECT_NEAR(s2.levels[k].probabilities[i].value(),
                  0.5 * s1.levels[k].probabilities[i].value(), 1e-15);
    }
  }
}

TEST(CoreDeep, SimulationLevelCountIndependentOfQ) {
  auto net = paper_network(12, 24);
  for (double v : {0.01, 0.5, 1.0}) {
    std::vector<double> q(net.size(), v);
    EXPECT_EQ(static_cast<int>(build_simulation_schedule(net, units::probabilities(q)).levels.size()),
              util::theorem2_num_levels(net.size()));
  }
}

// ---------------------------------------------------------------------------
// Transfer under explicit powers.
// ---------------------------------------------------------------------------

TEST(CoreDeep, TransferRespectsRepoweredNetwork) {
  // Power control reshapes gains; the Lemma 2 bound must hold on the
  // network *with those powers applied*, and evaluating on the original
  // would be wrong. Verify both facts.
  auto net = paper_network(30, 25);
  const double beta = 2.5;
  const auto pc = algorithms::power_control_capacity(net, beta);
  if (pc.selected.empty()) GTEST_SKIP() << "degenerate instance";
  model::Network powered = net;
  powered.set_powers(*pc.powers);
  for (LinkId i : pc.selected) {
    EXPECT_GE(per_link_transfer_probability(powered, pc.selected, i).value(),
              1.0 / std::exp(1.0) - 1e-12);
  }
  // On the original (uniform-power) network the set need not be feasible at
  // beta, so this is genuinely a different evaluation.
  // (No assertion: just ensure it does not crash and may differ.)
  (void)model::is_feasible(net, pc.selected, units::Threshold(beta));
}

TEST(CoreDeep, ReductionFacadeMatchesManualPipeline) {
  auto net = paper_network(30, 26);
  util::RngStream r1(26), r2(26);
  algorithms::ReductionOptions opts;  // greedy
  const auto facade = algorithms::schedule_capacity_rayleigh(
      net, Utility::binary(units::Threshold(2.5)), opts, r1);
  const auto manual_set = algorithms::greedy_capacity(net, 2.5).selected;
  EXPECT_EQ(facade.transmit_set, manual_set);
  const auto manual_transfer = transfer_capacity_solution(
      net, manual_set, Utility::binary(units::Threshold(2.5)), 1, r2);
  EXPECT_DOUBLE_EQ(facade.expected_rayleigh_value,
                   manual_transfer.rayleigh_value);
}

// ---------------------------------------------------------------------------
// Cross-checks between independent closed forms.
// ---------------------------------------------------------------------------

TEST(CoreDeep, NoiseOnlyAgreesAcrossThreeImplementations) {
  // (1) Theorem 1 with no interferers; (2) the Rayleigh slot form;
  // (3) Nakagami noise-only closed form at m = 1.
  auto net = hand_matrix_network(0.4);
  const double beta = 2.0;
  std::vector<double> q = {1.0, 0.0, 0.0};
  const double t1 = rayleigh_success_probability(net, units::probabilities(q), 0, units::Threshold(beta)).value();
  const double slot = model::success_probability_rayleigh(net, {0}, 0, units::Threshold(beta)).value();
  const double nak = model::noise_only_success_probability_nakagami(
      units::LinearGain(net.signal(0)), net.noise_power(),
      units::Threshold(beta), 1.0).value();
  EXPECT_NEAR(t1, slot, 1e-15);
  EXPECT_NEAR(t1, nak, 1e-12);
}

TEST(CoreDeep, ExpectedSuccessesAgreesWithGradientIntegral) {
  // E(q) is multilinear; along the ray q(t) = t * q0 the fundamental
  // theorem gives E(q0) = integral of grad . q0 dt. Check with a coarse
  // midpoint rule to ~1% — an independent validation of the gradient.
  auto net = paper_network(8, 27);
  std::vector<double> q0(net.size(), 0.8);
  const double beta = 2.5;
  const int steps = 200;
  double integral = 0.0;
  for (int s = 0; s < steps; ++s) {
    const double t = (s + 0.5) / steps;
    std::vector<double> qt(net.size());
    for (std::size_t i = 0; i < qt.size(); ++i) qt[i] = t * q0[i];
    const auto grad = algorithms::expected_capacity_gradient(net, qt, beta);
    double dot = 0.0;
    for (std::size_t i = 0; i < qt.size(); ++i) dot += grad[i] * q0[i];
    integral += dot / steps;
  }
  const double direct = expected_rayleigh_successes(net, units::probabilities(q0), units::Threshold(beta));
  EXPECT_NEAR(integral, direct, 0.01 * direct);
}

TEST(CoreDeep, CoverTimeAgreesWithSimulatedGeometrics) {
  // expected_cover_time vs direct simulation of independent geometrics.
  const std::vector<double> p = {0.2, 0.5, 0.35};
  const double analytic = expected_cover_time(units::probabilities(p));
  util::RngStream rng(28);
  sim::Accumulator acc;
  for (int run = 0; run < 40000; ++run) {
    long t = 0;
    std::vector<bool> done(p.size(), false);
    std::size_t remaining = p.size();
    while (remaining > 0) {
      ++t;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (!done[i] && rng.bernoulli(p[i])) {
          done[i] = true;
          --remaining;
        }
      }
    }
    acc.add(static_cast<double>(t));
  }
  EXPECT_NEAR(acc.mean(), analytic, 0.03 * analytic);
}

}  // namespace
}  // namespace raysched::core
