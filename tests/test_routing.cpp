// Tests for relay routing (min-hop paths + induced link networks).
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace raysched::algorithms {
namespace {

using model::Point;

std::vector<Point> line_relays(std::size_t count, double spacing) {
  std::vector<Point> relays;
  for (std::size_t i = 0; i < count; ++i) {
    relays.push_back(Point{static_cast<double>(i) * spacing, 0.0});
  }
  return relays;
}

TEST(MinHopPath, StraightLine) {
  const auto relays = line_relays(5, 10.0);
  const auto path = min_hop_path(relays, 10.5, 0, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(MinHopPath, LongRangeSkipsRelays) {
  const auto relays = line_relays(5, 10.0);
  const auto path = min_hop_path(relays, 20.5, 0, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);  // 0 -> 2 -> 4
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 4u);
}

TEST(MinHopPath, DisconnectedReturnsNullopt) {
  const auto relays = line_relays(3, 10.0);
  EXPECT_FALSE(min_hop_path(relays, 5.0, 0, 2).has_value());
}

TEST(MinHopPath, TrivialSelfPath) {
  const auto relays = line_relays(3, 10.0);
  const auto path = min_hop_path(relays, 10.5, 1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::size_t>{1}));
}

TEST(MinHopPath, Validates) {
  const auto relays = line_relays(3, 10.0);
  EXPECT_THROW(min_hop_path(relays, 0.0, 0, 1), raysched::error);
  EXPECT_THROW(min_hop_path(relays, 10.0, 0, 9), raysched::error);
}

TEST(RouteRequests, BuildsNetworkAndHops) {
  const auto relays = line_relays(4, 10.0);
  const std::vector<RouteRequest> requests = {{0, 3}, {1, 3}};
  const auto routed =
      route_requests(relays, 10.5, requests,
                     model::PowerAssignment::uniform(2.0), 2.5, units::Power(1e-9).value());
  // Edges used: (0,1),(1,2),(2,3) shared by both requests.
  EXPECT_EQ(routed.network.size(), 3u);
  ASSERT_EQ(routed.requests.size(), 2u);
  EXPECT_EQ(routed.requests[0].hops.size(), 3u);
  EXPECT_EQ(routed.requests[1].hops.size(), 2u);
  // Request 1 shares the (1,2),(2,3) suffix with request 0.
  EXPECT_EQ(routed.requests[0].hops[1], routed.requests[1].hops[0]);
  EXPECT_EQ(routed.requests[0].hops[2], routed.requests[1].hops[1]);
  // Endpoint bookkeeping matches.
  ASSERT_EQ(routed.link_endpoints.size(), 3u);
  EXPECT_EQ(routed.link_endpoints[routed.requests[0].hops[0]],
            (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(RouteRequests, BidirectionalEdgesAreDistinctLinks) {
  const auto relays = line_relays(2, 10.0);
  const std::vector<RouteRequest> requests = {{0, 1}, {1, 0}};
  const auto routed =
      route_requests(relays, 10.5, requests,
                     model::PowerAssignment::uniform(2.0), 2.5, units::Power(1e-9).value());
  EXPECT_EQ(routed.network.size(), 2u);  // (0,1) and (1,0)
}

TEST(RouteRequests, EndToEndScheduling) {
  // Route then schedule: the full Section-4 multi-hop pipeline.
  const auto relays = line_relays(5, 10.0);
  const std::vector<RouteRequest> requests = {{0, 4}, {2, 0}, {3, 4}};
  const auto routed =
      route_requests(relays, 10.5, requests,
                     model::PowerAssignment::uniform(2.0), 2.5, units::Power(1e-9).value());
  for (auto prop : {Propagation::NonFading, Propagation::Rayleigh}) {
    util::RngStream rng(static_cast<std::uint64_t>(prop) + 5);
    const auto result = schedule_multihop(routed.network, routed.requests,
                                          1.5, prop, rng);
    EXPECT_TRUE(result.completed);
  }
}

TEST(RouteRequests, Validates) {
  const auto relays = line_relays(3, 10.0);
  const auto power = model::PowerAssignment::uniform(1.0);
  EXPECT_THROW(route_requests({}, 1.0, {{0, 1}}, power, 2.0, 0.0),
               raysched::error);
  EXPECT_THROW(route_requests(relays, 10.5, {}, power, 2.0, 0.0),
               raysched::error);
  EXPECT_THROW(route_requests(relays, 10.5, {{1, 1}}, power, 2.0, 0.0),
               raysched::error);
  EXPECT_THROW(route_requests(relays, 5.0, {{0, 2}}, power, 2.0, 0.0),
               raysched::error);
  // Duplicate relay positions rejected.
  std::vector<Point> dup = {Point{0, 0}, Point{0, 0}};
  EXPECT_THROW(route_requests(dup, 1.0, {{0, 1}}, power, 2.0, 0.0),
               raysched::error);
}

TEST(SampleSet, QuantilesExact) {
  sim::SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);  // interpolated
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(SampleSet, SingleSampleAndValidation) {
  sim::SampleSet s;
  EXPECT_THROW(s.median(), raysched::error);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
  EXPECT_THROW(s.quantile(1.5), raysched::error);
}

TEST(SampleSet, AddAfterQuantileResorts) {
  sim::SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

}  // namespace
}  // namespace raysched::algorithms
