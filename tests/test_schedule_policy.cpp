// Tests for the pluggable schedule-recompute policies and their supporting
// pieces: the WeightedGreedyOracle's bit-identity to the from-scratch
// greedy, the incremental max-weight policy's bit-identity to the
// from-scratch policy under churn, the AHM probability state machine, and
// the saturating slot arithmetic the agent's deadline math runs on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "test_helpers.hpp"
#include "util/saturate.hpp"

namespace raysched::serve {
namespace {

using model::LinkId;
using model::LinkSet;
using raysched::testing::hand_matrix_network;
using raysched::testing::paper_network;

std::vector<double> random_weights(std::size_t n, util::RngStream& rng) {
  std::vector<double> w(n);
  for (auto& x : w) {
    // Mix zeros (inactive links) with heavy-tailed positive weights.
    x = rng.uniform() < 0.25 ? 0.0 : rng.uniform() * 100.0;
  }
  return w;
}

// ---- WeightedGreedyOracle -------------------------------------------------

TEST(WeightedGreedyOracle, MatchesFreeFunctionBitwiseOnGeometry) {
  auto net = paper_network(24, 51);
  const double beta = 2.5;
  algorithms::WeightedGreedyOracle oracle(net, beta);
  ASSERT_EQ(oracle.size(), net.size());
  util::RngStream rng(17);
  LinkSet cached;
  for (int round = 0; round < 25; ++round) {
    const std::vector<double> w = random_weights(net.size(), rng);
    oracle.compute(w, cached);
    const algorithms::WeightedCapacityResult direct =
        algorithms::weighted_greedy_capacity(net, beta, w);
    EXPECT_EQ(cached, direct.selected) << "round " << round;
    const algorithms::WeightedCapacityResult owned = oracle.compute(w);
    EXPECT_EQ(owned.selected, direct.selected);
    EXPECT_EQ(owned.value, direct.value);  // bitwise: same doubles summed
  }
}

TEST(WeightedGreedyOracle, MatchesFreeFunctionOnMatrixNetwork) {
  // Geometry-free network: the tie-break comparator falls back to link id.
  auto net = hand_matrix_network(0.1);
  const double beta = 1.2;
  algorithms::WeightedGreedyOracle oracle(net, beta);
  util::RngStream rng(29);
  LinkSet cached;
  for (int round = 0; round < 10; ++round) {
    std::vector<double> w = random_weights(net.size(), rng);
    if (round == 0) w = {5.0, 5.0, 5.0};  // all-ties: id order decides
    oracle.compute(w, cached);
    EXPECT_EQ(cached,
              algorithms::weighted_greedy_capacity(net, beta, w).selected)
        << "round " << round;
  }
}

TEST(WeightedGreedyOracle, CachesTheRawAffectance) {
  auto net = paper_network(8, 52);
  const units::Threshold beta(2.5);
  algorithms::WeightedGreedyOracle oracle(net, beta.value());
  for (LinkId j = 0; j < net.size(); ++j) {
    for (LinkId i = 0; i < net.size(); ++i) {
      EXPECT_EQ(oracle.affectance(j, i),
                model::affectance_raw(net, j, i, beta))
          << j << "->" << i;
    }
  }
}

TEST(WeightedGreedyOracle, ValidatesInput) {
  auto net = hand_matrix_network();
  EXPECT_THROW(algorithms::WeightedGreedyOracle(net, 0.0), raysched::error);
  algorithms::WeightedGreedyOracle oracle(net, 1.0);
  LinkSet out;
  EXPECT_THROW(oracle.compute({1.0, 2.0}, out), raysched::error);  // size
  EXPECT_THROW(
      oracle.compute({1.0, std::numeric_limits<double>::quiet_NaN(), 1.0},
                     out),
      raysched::error);
}

// ---- policy construction --------------------------------------------------

TEST(SchedulePolicy, KindNamesRoundTrip) {
  for (PolicyKind kind : {PolicyKind::MaxWeight,
                          PolicyKind::MaxWeightIncremental, PolicyKind::Ahm}) {
    EXPECT_EQ(policy_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(policy_kind_from_string("round-robin"), raysched::error);
}

// ---- incremental max-weight vs from-scratch -------------------------------

TEST(SchedulePolicy, IncrementalMatchesFromScratchUnderChurn) {
  auto net = paper_network(20, 53);
  const units::Threshold beta(2.5);
  auto scratch = make_schedule_policy(PolicyKind::MaxWeight, net, beta);
  auto incremental =
      make_schedule_policy(PolicyKind::MaxWeightIncremental, net, beta);

  util::RngStream rng(61);
  std::vector<char> active(net.size(), 1);
  for (std::uint64_t slot = 0; slot < 40; ++slot) {
    ScheduleRequest request;
    request.slot = slot;
    // Scripted churn: links leave and rejoin; departed carries the leavers.
    for (LinkId i = 0; i < net.size(); ++i) {
      if (active[i] != 0 && rng.uniform() < 0.15) {
        active[i] = 0;
        request.departed.push_back(i);
      } else if (active[i] == 0 && rng.uniform() < 0.3) {
        active[i] = 1;
      }
    }
    request.weights.assign(net.size(), 0.0);
    for (LinkId i = 0; i < net.size(); ++i) {
      if (active[i] != 0) request.weights[i] = rng.uniform() * 50.0;
    }
    const PolicyResult a = scratch->compute(request);
    const PolicyResult b = incremental->compute(request);
    EXPECT_EQ(a.schedule, b.schedule) << "slot " << slot;
    // The incremental policy prices its schedule; the kernel's q is the
    // schedule indicator, so the expected rate is positive whenever
    // anything is scheduled, bounded by the schedule size.
    if (!b.schedule.empty()) {
      EXPECT_GT(b.expected_rate, 0.0) << "slot " << slot;
      EXPECT_LE(b.expected_rate, static_cast<double>(b.schedule.size()));
    } else {
      EXPECT_EQ(b.expected_rate, 0.0);
    }
  }
}

TEST(SchedulePolicy, IncrementalRestoreRebuildsDeterministically) {
  auto net = paper_network(12, 54);
  const units::Threshold beta(2.0);
  auto a = make_schedule_policy(PolicyKind::MaxWeightIncremental, net, beta);

  util::RngStream rng(71);
  ScheduleRequest request;
  request.slot = 0;
  request.weights = random_weights(net.size(), rng);
  const PolicyResult adopted = a->compute(request);
  EXPECT_TRUE(a->persisted_state().empty());  // rebuilt, not serialized

  // A fresh policy restored from (empty state, adopted schedule) must
  // produce the same schedule for every subsequent request.
  auto b = make_schedule_policy(PolicyKind::MaxWeightIncremental, net, beta);
  b->restore_state({}, adopted.schedule);
  for (std::uint64_t slot = 1; slot < 10; ++slot) {
    ScheduleRequest next;
    next.slot = slot;
    next.weights = random_weights(net.size(), rng);
    const PolicyResult ra = a->compute(next);
    const PolicyResult rb = b->compute(next);
    EXPECT_EQ(ra.schedule, rb.schedule) << "slot " << slot;
    EXPECT_EQ(ra.expected_rate, rb.expected_rate) << "slot " << slot;
  }
  // A non-empty persisted state is a contract violation for this policy.
  EXPECT_THROW(b->restore_state({0.5}, adopted.schedule), raysched::error);
}

// ---- AHM ------------------------------------------------------------------

TEST(AhmScheduler, FeedbackMovesProbabilitiesMultiplicatively) {
  algorithms::AhmConfig config;
  algorithms::AhmScheduler ahm(3, config);
  ASSERT_EQ(ahm.size(), 3u);
  EXPECT_EQ(ahm.probabilities(), (std::vector<double>{0.25, 0.25, 0.25}));

  ahm.feedback({0, 1}, {1, 0});  // 0 succeeded, 1 failed, 2 untouched
  EXPECT_EQ(ahm.probabilities()[0], 0.5);
  EXPECT_EQ(ahm.probabilities()[1], 0.125);
  EXPECT_EQ(ahm.probabilities()[2], 0.25);

  // Clamps: repeated success pins at p_max, repeated failure at p_min.
  for (int k = 0; k < 10; ++k) ahm.feedback({0, 1}, {1, 0});
  EXPECT_EQ(ahm.probabilities()[0], config.p_max.value());
  EXPECT_EQ(ahm.probabilities()[1], config.p_min.value());
}

TEST(AhmScheduler, SampleIsDeterministicAndRespectsBacklog) {
  algorithms::AhmConfig config;
  config.p_init = units::Probability(1.0);  // every backlogged link joins
  algorithms::AhmScheduler ahm(4, config);
  util::RngStream rng(5);
  LinkSet out;
  ahm.sample(rng, {1, 0, 1, 0}, out);
  EXPECT_EQ(out, (LinkSet{0, 2}));  // idle links never sampled

  // Same stream position + same backlog -> bit-identical sample.
  algorithms::AhmConfig half;
  algorithms::AhmScheduler a(64, half), b(64, half);
  util::RngStream ra(9), rb(9);
  LinkSet sa, sb;
  const std::vector<char> backlog(64, 1);
  a.sample(ra, backlog, sa);
  b.sample(rb, backlog, sb);
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(sa.empty());  // p=0.25 over 64 links: empty is (3/4)^64
}

TEST(AhmScheduler, RestoreRoundTripsAndValidates) {
  algorithms::AhmConfig config;
  algorithms::AhmScheduler ahm(3, config);
  ahm.feedback({0, 1, 2}, {1, 0, 1});
  const std::vector<double> saved = ahm.probabilities();

  algorithms::AhmScheduler fresh(3, config);
  fresh.restore(saved);
  EXPECT_EQ(fresh.probabilities(), saved);
  EXPECT_THROW(fresh.restore({0.5, 0.5}), raysched::error);  // size
  EXPECT_THROW(fresh.restore({0.5, 0.5, 2.0}), raysched::error);  // range
}

TEST(AhmScheduler, ValidatesConfig) {
  algorithms::AhmConfig bad;
  bad.p_min = units::Probability(0.0);  // p_min must stay positive
  EXPECT_THROW(algorithms::AhmScheduler(2, bad), raysched::error);
  algorithms::AhmConfig inverted;
  inverted.p_init = units::Probability(0.001);  // below p_min
  EXPECT_THROW(algorithms::AhmScheduler(2, inverted), raysched::error);
  algorithms::AhmConfig shrink;
  shrink.up = 0.5;  // success must not lower the probability
  EXPECT_THROW(algorithms::AhmScheduler(2, shrink), raysched::error);
}

TEST(SchedulePolicy, AhmPolicyIsSlotDeterministicAndRestorable) {
  auto net = paper_network(16, 55);
  const units::Threshold beta(2.5);
  PolicyOptions options;
  options.seed = 123;

  auto a = make_schedule_policy(PolicyKind::Ahm, net, beta, options);
  auto b = make_schedule_policy(PolicyKind::Ahm, net, beta, options);
  ScheduleRequest request;
  request.slot = 7;
  request.weights.assign(net.size(), 1.0);
  const PolicyResult ra = a->compute(request);
  const PolicyResult rb = b->compute(request);
  EXPECT_EQ(ra.schedule, rb.schedule);  // same seed + slot -> same sample

  // Feedback mutates persisted state; a restored clone replays identically.
  ScheduleRequest with_feedback;
  with_feedback.slot = 8;
  with_feedback.weights.assign(net.size(), 1.0);
  with_feedback.feedback_schedule = ra.schedule;
  with_feedback.feedback_success.assign(ra.schedule.size(), 1);
  (void)a->compute(with_feedback);
  const std::vector<double> state = a->persisted_state();
  ASSERT_EQ(state.size(), net.size());

  auto c = make_schedule_policy(PolicyKind::Ahm, net, beta, options);
  c->restore_state(state, {});
  ScheduleRequest probe;
  probe.slot = 9;
  probe.weights.assign(net.size(), 1.0);
  EXPECT_EQ(a->compute(probe).schedule, c->compute(probe).schedule);
}

// ---- saturating slot arithmetic -------------------------------------------

TEST(Saturate, AddAndMulClampAtMax) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(util::sat_add(2, 3), 5u);
  EXPECT_EQ(util::sat_add(kMax, 0), kMax);
  EXPECT_EQ(util::sat_add(kMax, 1), kMax);
  EXPECT_EQ(util::sat_add(kMax / 2 + 1, kMax / 2 + 1), kMax);
  EXPECT_EQ(util::sat_mul(6, 7), 42u);
  EXPECT_EQ(util::sat_mul(kMax, 0), 0u);
  EXPECT_EQ(util::sat_mul(kMax, 1), kMax);
  EXPECT_EQ(util::sat_mul(kMax / 2 + 1, 2), kMax);
  EXPECT_EQ(util::sat_mul(1ULL << 32, 1ULL << 32), kMax);
}

TEST(Saturate, AgentDueSlotSaturatesInsteadOfWrapping) {
  auto net = paper_network(4, 56);
  ScheduleAgent agent(net, units::Threshold(2.5), 1);
  // A delay pile-up can push latency to the top of the range; the due slot
  // must pin at "never", not wrap into the past.
  agent.submit(10, std::vector<double>(net.size(), 1.0),
               std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(agent.due_slot(), std::numeric_limits<std::uint64_t>::max());
  (void)agent.reap();
}

}  // namespace
}  // namespace raysched::serve
