// Tests for the Monte-Carlo experiment engine.
#include <gtest/gtest.h>

#include <atomic>

#include "test_helpers.hpp"

namespace raysched::sim {
namespace {

model::Network tiny_instance(RngStream& rng) {
  model::RandomPlaneParams params;
  params.num_links = 5;
  auto links = model::random_plane_links(params, rng);
  return model::Network(std::move(links), model::PowerAssignment::uniform(2.0),
                        2.2, 4e-7);
}

TEST(Engine, RunsAllCells) {
  ExperimentConfig config;
  config.num_networks = 4;
  config.trials_per_network = 6;
  std::atomic<int> calls{0};
  const auto result = run_experiment(
      config, {"one"}, tiny_instance,
      [&](const model::Network&, RngStream&) {
        calls.fetch_add(1);
        return std::vector<double>{1.0};
      });
  EXPECT_EQ(calls.load(), 24);
  EXPECT_EQ(result.per_trial[0].count(), 24u);
  EXPECT_EQ(result.per_network[0].count(), 4u);
  EXPECT_DOUBLE_EQ(result.per_trial[0].mean(), 1.0);
}

TEST(Engine, MetricsAreSeparated) {
  ExperimentConfig config;
  config.num_networks = 2;
  config.trials_per_network = 3;
  const auto result = run_experiment(
      config, {"a", "b"}, tiny_instance,
      [](const model::Network&, RngStream&) {
        return std::vector<double>{2.0, 5.0};
      });
  EXPECT_EQ(result.num_metrics(), 2u);
  EXPECT_DOUBLE_EQ(result.per_trial[0].mean(), 2.0);
  EXPECT_DOUBLE_EQ(result.per_trial[1].mean(), 5.0);
}

TEST(Engine, DeterministicAcrossThreadCounts) {
  // The per-cell streams are derived from (network, trial), so thread count
  // must not change any statistic.
  auto trial = [](const model::Network& net, RngStream& rng) {
    model::LinkSet active;
    for (model::LinkId i = 0; i < net.size(); ++i) {
      if (rng.bernoulli(0.5)) active.push_back(i);
    }
    return std::vector<double>{
        static_cast<double>(model::count_successes_nonfading(net, active, 2.5))};
  };
  ExperimentConfig seq;
  seq.num_networks = 6;
  seq.trials_per_network = 10;
  seq.num_threads = 1;
  ExperimentConfig par = seq;
  par.num_threads = 4;
  const auto a = run_experiment(seq, {"s"}, tiny_instance, trial);
  const auto b = run_experiment(par, {"s"}, tiny_instance, trial);
  EXPECT_DOUBLE_EQ(a.per_trial[0].mean(), b.per_trial[0].mean());
  EXPECT_DOUBLE_EQ(a.per_trial[0].variance(), b.per_trial[0].variance());
  EXPECT_DOUBLE_EQ(a.per_network[0].mean(), b.per_network[0].mean());
}

TEST(Engine, DifferentSeedsGiveDifferentInstances) {
  auto trial = [](const model::Network& net, RngStream&) {
    return std::vector<double>{net.link(0).receiver.x};
  };
  ExperimentConfig c1;
  c1.num_networks = 3;
  c1.trials_per_network = 1;
  c1.master_seed = 1;
  ExperimentConfig c2 = c1;
  c2.master_seed = 2;
  const auto a = run_experiment(c1, {"x"}, tiny_instance, trial);
  const auto b = run_experiment(c2, {"x"}, tiny_instance, trial);
  EXPECT_NE(a.per_trial[0].mean(), b.per_trial[0].mean());
}

TEST(Engine, PerNetworkAveragesTrialMeans) {
  // Each network contributes the mean of its trials, regardless of trial
  // count weighting.
  int network_counter = 0;
  auto factory = [&](RngStream& rng) {
    ++network_counter;
    return tiny_instance(rng);
  };
  int call = 0;
  ExperimentConfig config;
  config.num_networks = 2;
  config.trials_per_network = 2;
  const auto result = run_experiment(
      config, {"v"}, factory, [&](const model::Network&, RngStream&) {
        // Network 0 trials: 0, 2 (mean 1); network 1 trials: 10, 30 (mean 20).
        const double values[] = {0.0, 2.0, 10.0, 30.0};
        return std::vector<double>{values[call++]};
      });
  EXPECT_DOUBLE_EQ(result.per_network[0].mean(), 10.5);  // (1 + 20) / 2
  EXPECT_DOUBLE_EQ(result.per_trial[0].mean(), 10.5);    // same here (equal k)
  EXPECT_NEAR(result.per_network[0].variance(), (1.0 - 10.5) * (1.0 - 10.5) +
                                                    (20.0 - 10.5) * (20.0 - 10.5),
              1e-9);
}

TEST(Engine, ValidatesConfiguration) {
  ExperimentConfig bad;
  bad.num_networks = 0;
  EXPECT_THROW(run_experiment(bad, {"m"}, tiny_instance,
                              [](const model::Network&, RngStream&) {
                                return std::vector<double>{0.0};
                              }),
               raysched::error);
  ExperimentConfig ok;
  EXPECT_THROW(run_experiment(ok, {}, tiny_instance,
                              [](const model::Network&, RngStream&) {
                                return std::vector<double>{};
                              }),
               raysched::error);
  EXPECT_THROW(run_experiment(ok, {"m"}, tiny_instance,
                              [](const model::Network&, RngStream&) {
                                return std::vector<double>{1.0, 2.0};  // wrong width
                              }),
               raysched::error);
}

}  // namespace
}  // namespace raysched::sim
