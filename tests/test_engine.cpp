// Tests for the Monte-Carlo experiment engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include "test_helpers.hpp"

namespace raysched::sim {
namespace {

model::Network tiny_instance(util::RngStream& rng) {
  model::RandomPlaneParams params;
  params.num_links = 5;
  auto links = model::random_plane_links(params, rng);
  return model::Network(std::move(links), model::PowerAssignment::uniform(2.0),
                        2.2, units::Power(4e-7));
}

TEST(Engine, RunsAllCells) {
  ExperimentConfig config;
  config.num_networks = 4;
  config.trials_per_network = 6;
  std::atomic<int> calls{0};
  const auto result = run_experiment(
      config, {"one"}, tiny_instance,
      [&](const model::Network&, util::RngStream&) {
        calls.fetch_add(1);
        return std::vector<double>{1.0};
      });
  EXPECT_EQ(calls.load(), 24);
  EXPECT_EQ(result.per_trial[0].count(), 24u);
  EXPECT_EQ(result.per_network[0].count(), 4u);
  EXPECT_DOUBLE_EQ(result.per_trial[0].mean(), 1.0);
}

TEST(Engine, MetricsAreSeparated) {
  ExperimentConfig config;
  config.num_networks = 2;
  config.trials_per_network = 3;
  const auto result = run_experiment(
      config, {"a", "b"}, tiny_instance,
      [](const model::Network&, util::RngStream&) {
        return std::vector<double>{2.0, 5.0};
      });
  EXPECT_EQ(result.num_metrics(), 2u);
  EXPECT_DOUBLE_EQ(result.per_trial[0].mean(), 2.0);
  EXPECT_DOUBLE_EQ(result.per_trial[1].mean(), 5.0);
}

TEST(Engine, DeterministicAcrossThreadCounts) {
  // The per-cell streams are derived from (network, trial), so thread count
  // must not change any statistic.
  auto trial = [](const model::Network& net, util::RngStream& rng) {
    model::LinkSet active;
    for (model::LinkId i = 0; i < net.size(); ++i) {
      if (rng.bernoulli(0.5)) active.push_back(i);
    }
    return std::vector<double>{
        static_cast<double>(model::count_successes_nonfading(net, active, units::Threshold(2.5)))};
  };
  ExperimentConfig seq;
  seq.num_networks = 6;
  seq.trials_per_network = 10;
  seq.num_threads = 1;
  ExperimentConfig par = seq;
  par.num_threads = 4;
  const auto a = run_experiment(seq, {"s"}, tiny_instance, trial);
  const auto b = run_experiment(par, {"s"}, tiny_instance, trial);
  EXPECT_DOUBLE_EQ(a.per_trial[0].mean(), b.per_trial[0].mean());
  EXPECT_DOUBLE_EQ(a.per_trial[0].variance(), b.per_trial[0].variance());
  EXPECT_DOUBLE_EQ(a.per_network[0].mean(), b.per_network[0].mean());
}

TEST(Engine, DifferentSeedsGiveDifferentInstances) {
  auto trial = [](const model::Network& net, util::RngStream&) {
    return std::vector<double>{net.link(0).receiver.x};
  };
  ExperimentConfig c1;
  c1.num_networks = 3;
  c1.trials_per_network = 1;
  c1.master_seed = 1;
  ExperimentConfig c2 = c1;
  c2.master_seed = 2;
  const auto a = run_experiment(c1, {"x"}, tiny_instance, trial);
  const auto b = run_experiment(c2, {"x"}, tiny_instance, trial);
  EXPECT_NE(a.per_trial[0].mean(), b.per_trial[0].mean());
}

TEST(Engine, PerNetworkAveragesTrialMeans) {
  // Each network contributes the mean of its trials, regardless of trial
  // count weighting.
  int network_counter = 0;
  auto factory = [&](util::RngStream& rng) {
    ++network_counter;
    return tiny_instance(rng);
  };
  int call = 0;
  ExperimentConfig config;
  config.num_networks = 2;
  config.trials_per_network = 2;
  const auto result = run_experiment(
      config, {"v"}, factory, [&](const model::Network&, util::RngStream&) {
        // Network 0 trials: 0, 2 (mean 1); network 1 trials: 10, 30 (mean 20).
        const double values[] = {0.0, 2.0, 10.0, 30.0};
        return std::vector<double>{values[call++]};
      });
  EXPECT_DOUBLE_EQ(result.per_network[0].mean(), 10.5);  // (1 + 20) / 2
  EXPECT_DOUBLE_EQ(result.per_trial[0].mean(), 10.5);    // same here (equal k)
  EXPECT_NEAR(result.per_network[0].variance(), (1.0 - 10.5) * (1.0 - 10.5) +
                                                    (20.0 - 10.5) * (20.0 - 10.5),
              1e-9);
}

TEST(Engine, SkipPolicyWithoutFaultsMatchesAbortPolicy) {
  // On a fault-free sweep the policy must be invisible: identical statistics
  // and empty failure bookkeeping.
  auto trial = [](const model::Network& net, util::RngStream& rng) {
    return std::vector<double>{rng.uniform() * static_cast<double>(net.size())};
  };
  ExperimentConfig abort_cfg;
  abort_cfg.num_networks = 4;
  abort_cfg.trials_per_network = 5;
  ExperimentConfig skip_cfg = abort_cfg;
  skip_cfg.fault_policy = FaultPolicy::Skip;
  ExperimentConfig retry_cfg = abort_cfg;
  retry_cfg.fault_policy = FaultPolicy::RetryThenSkip;
  const auto a = run_experiment(abort_cfg, {"u"}, tiny_instance, trial);
  const auto s = run_experiment(skip_cfg, {"u"}, tiny_instance, trial);
  const auto r = run_experiment(retry_cfg, {"u"}, tiny_instance, trial);
  for (const auto* other : {&s, &r}) {
    EXPECT_EQ(a.per_trial[0].count(), other->per_trial[0].count());
    EXPECT_EQ(a.per_trial[0].mean(), other->per_trial[0].mean());
    EXPECT_EQ(a.per_trial[0].variance(), other->per_trial[0].variance());
    EXPECT_TRUE(other->failures.empty());
    EXPECT_EQ(other->cells_skipped, 0u);
    EXPECT_EQ(other->retries_used, 0u);
    EXPECT_FALSE(other->interrupted);
  }
  EXPECT_EQ(a.cells_completed, 20u);
  EXPECT_EQ(a.networks_completed, 4u);
}

TEST(Engine, CurrentCellReportsCoordinatesDuringEvaluation) {
  ExperimentConfig config;
  config.num_networks = 2;
  config.trials_per_network = 3;
  std::atomic<int> factory_checks{0};
  std::atomic<int> trial_checks{0};
  const auto result = run_experiment(
      config, {"one"},
      [&](util::RngStream& rng) {
        const CellRef cell = current_cell();
        EXPECT_TRUE(cell.active);
        EXPECT_EQ(cell.trial_idx, kNoTrial);
        EXPECT_LT(cell.net_idx, 2u);
        factory_checks.fetch_add(1);
        return tiny_instance(rng);
      },
      [&](const model::Network&, util::RngStream&) {
        const CellRef cell = current_cell();
        EXPECT_TRUE(cell.active);
        EXPECT_LT(cell.trial_idx, 3u);
        EXPECT_EQ(cell.attempt, 0u);
        trial_checks.fetch_add(1);
        return std::vector<double>{1.0};
      });
  EXPECT_EQ(factory_checks.load(), 2);
  EXPECT_EQ(trial_checks.load(), 6);
  EXPECT_EQ(result.cells_completed, 6u);
  // Outside the engine no cell is active.
  EXPECT_FALSE(current_cell().active);
}

TEST(Engine, PeriodicCheckpointIsWrittenAndLoadable) {
  const std::string path = "test_engine_ckpt.txt";
  std::remove(path.c_str());
  ExperimentConfig config;
  config.num_networks = 5;
  config.trials_per_network = 2;
  config.master_seed = 3;
  config.checkpoint_path = path;
  config.checkpoint_every = 2;
  const auto result = run_experiment(
      config, {"v"}, tiny_instance, [](const model::Network&, util::RngStream& rng) {
        return std::vector<double>{rng.uniform()};
      });
  EXPECT_EQ(result.networks_completed, 5u);
  const Checkpoint ckpt = load_checkpoint(path);
  EXPECT_EQ(ckpt.master_seed, 3u);
  EXPECT_EQ(ckpt.networks.size(), 5u);  // final snapshot covers everything
  ASSERT_EQ(ckpt.metric_names.size(), 1u);
  EXPECT_EQ(ckpt.metric_names[0], "v");
  std::remove(path.c_str());
}

TEST(Engine, PreSetCancelFlagStopsImmediately) {
  ExperimentConfig config;
  config.num_networks = 3;
  config.trials_per_network = 3;
  std::atomic<bool> cancel{true};
  config.cancel = &cancel;
  std::atomic<int> calls{0};
  const auto result = run_experiment(
      config, {"v"}, tiny_instance, [&](const model::Network&, util::RngStream&) {
        calls.fetch_add(1);
        return std::vector<double>{0.0};
      });
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.networks_completed, 0u);
  EXPECT_EQ(calls.load(), 0);
}

TEST(Engine, ValidatesConfiguration) {
  ExperimentConfig bad;
  bad.num_networks = 0;
  EXPECT_THROW(run_experiment(bad, {"m"}, tiny_instance,
                              [](const model::Network&, util::RngStream&) {
                                return std::vector<double>{0.0};
                              }),
               raysched::error);
  ExperimentConfig ok;
  EXPECT_THROW(run_experiment(ok, {}, tiny_instance,
                              [](const model::Network&, util::RngStream&) {
                                return std::vector<double>{};
                              }),
               raysched::error);
  EXPECT_THROW(run_experiment(ok, {"m"}, tiny_instance,
                              [](const model::Network&, util::RngStream&) {
                                return std::vector<double>{1.0, 2.0};  // wrong width
                              }),
               raysched::error);
}

}  // namespace
}  // namespace raysched::sim
