// Runtime pin for the hot-path memory discipline that tools/raysched_mem
// checks lexically: after warm-up, the steady-state serving slot loop, the
// kernel's incremental update_link, and the out-buffer sinr_rayleigh_all
// perform ZERO heap allocations. The counting operator new below is
// program-wide for this binary but purely passive (it forwards to malloc
// and only bumps an atomic), so coexisting tests are unaffected; ctest
// runs each test in its own process, so the counter sees only this file's
// work during its assertions.
//
// Measurement technique for the slot loop: Service::run(slots) has a small
// constant per-run allocation overhead (one digests.reserve, the report
// handoff) plus `slots` iterations of the slot loop. Comparing the
// allocation deltas of run(256) and run(512) cancels the constant: equal
// deltas prove the per-slot cost is exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "test_helpers.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace

// Counting global operator new/delete. Replacing the plain (unaligned)
// forms is enough: every container in the hot paths holds scalar types.
// Over-aligned allocations keep the library default, which pairs with the
// default aligned delete, so the two families never mix.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace raysched {
namespace {

using raysched::testing::paper_network;

serve::ServeConfig steady_config(core::Propagation propagation) {
  serve::ServeConfig config;
  config.master_seed = 31;
  config.beta = units::Threshold(2.5);
  config.propagation = propagation;
  config.traffic.model = serve::TrafficModel::Poisson;
  config.traffic.mean_rate = 0.3;
  config.queue_cap = 256;
  // One recompute during warm-up, then quiescent: the steady-state loop is
  // pure serving. The async submit path allocates by design and is
  // measured separately (bench/perf_serve.cpp allocs_per_slot).
  config.recompute_period = 1'000'000;
  config.agent_threads = 1;
  return config;
}

void expect_zero_alloc_slots(core::Propagation propagation) {
  serve::Service service(paper_network(16, 77), steady_config(propagation));

  // Warm-up: scratch buffers reach their fixed capacities, the first
  // recompute is adopted, every queue has seen traffic.
  (void)service.run(64);

  const std::uint64_t base = alloc_count();
  (void)service.run(256);
  const std::uint64_t delta_short = alloc_count() - base;
  const std::uint64_t mid = alloc_count();
  (void)service.run(512);
  const std::uint64_t delta_long = alloc_count() - mid;

  // Equal deltas across different slot counts: zero allocations per slot.
  EXPECT_EQ(delta_short, delta_long)
      << "slot loop allocates per slot: " << delta_short << " allocs over "
      << "256 slots vs " << delta_long << " over 512";
  // And the per-run constant itself stays tiny (reserve + report handoff).
  EXPECT_LE(delta_short, 8u);
}

TEST(HotPathAllocs, SteadyStateSlotLoopNonFading) {
  expect_zero_alloc_slots(core::Propagation::NonFading);
}

TEST(HotPathAllocs, SteadyStateSlotLoopRayleigh) {
  expect_zero_alloc_slots(core::Propagation::Rayleigh);
}

TEST(HotPathAllocs, KernelUpdateLinkAllocatesNothing) {
  const model::Network net = paper_network(32, 5);
  core::SuccessProbabilityKernel kernel(net, units::Threshold(2.0));
  kernel.set_probabilities(units::uniform_probabilities(
      net.size(), units::Probability(0.5)));
  kernel.update_link(3, units::Probability(0.25));  // warm every lazy path

  const std::uint64_t base = alloc_count();
  for (std::size_t i = 0; i < 200; ++i) {
    kernel.update_link(i % net.size(),
                       units::Probability(0.25 + 0.001 * (i % 100)));
  }
  EXPECT_EQ(alloc_count(), base)
      << "update_link allocated on the incremental path";
  EXPECT_GT(kernel.expected_successes(), 0.0);
}

TEST(HotPathAllocs, SinrOutBufferReusesCapacity) {
  const model::Network net = paper_network(16, 9);
  util::RngStream rng(123);
  model::LinkSet active;
  for (model::LinkId i = 0; i < 8; ++i) active.push_back(i);

  std::vector<double> out;
  model::sinr_rayleigh_all(net, active, rng, out);  // warm: one allocation

  const std::uint64_t base = alloc_count();
  for (int i = 0; i < 100; ++i) {
    model::sinr_rayleigh_all(net, active, rng, out);
  }
  EXPECT_EQ(alloc_count(), base)
      << "out-buffer sinr_rayleigh_all allocated after warm-up";
  EXPECT_EQ(out.size(), active.size());
}

// The out-buffer overload must stay bit-identical to the returning form:
// same RNG draw order, same arithmetic.
TEST(HotPathAllocs, SinrOutBufferBitIdenticalToReturningForm) {
  const model::Network net = paper_network(12, 21);
  model::LinkSet active;
  for (model::LinkId i = 0; i < 12; i += 2) active.push_back(i);

  util::RngStream rng_a(7);
  util::RngStream rng_b(7);
  const std::vector<double> returned =
      model::sinr_rayleigh_all(net, active, rng_a);
  std::vector<double> reused(99, -1.0);  // dirty, wrong-sized buffer
  model::sinr_rayleigh_all(net, active, rng_b, reused);

  ASSERT_EQ(returned.size(), reused.size());
  for (std::size_t a = 0; a < returned.size(); ++a) {
    EXPECT_EQ(returned[a], reused[a]) << "entry " << a;
  }
}

}  // namespace
}  // namespace raysched
