#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "sim/stats.hpp"

namespace raysched::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::RngStream a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  util::RngStream a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, DeriveIsStableAndIndependent) {
  util::RngStream base(7);
  util::RngStream c1 = base.derive(3);
  util::RngStream c2 = base.derive(3);
  util::RngStream c3 = base.derive(4);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  util::RngStream c1b = base.derive(3);
  EXPECT_NE(c1b.next_u64(), c3.next_u64());
}

TEST(Rng, DeriveDoesNotAdvanceParent) {
  util::RngStream a(11), b(11);
  (void)a.derive(99);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, TwoLevelDeriveMatches) {
  util::RngStream base(5);
  util::RngStream x = base.derive(1, 2);
  util::RngStream y = base.derive(1).derive(2);
  EXPECT_EQ(x.next_u64(), y.next_u64());
}

TEST(Rng, SequentialTagsDecorrelate) {
  // Low-entropy sequential tags (trial indices) must still produce distinct
  // streams — the common usage pattern of the Monte-Carlo engine.
  util::RngStream base(123);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t t = 0; t < 1000; ++t) {
    firsts.insert(base.derive(t).next_u64());
  }
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(Rng, UniformInUnitInterval) {
  util::RngStream rng(3);
  sim::Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc.add(u);
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  util::RngStream rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), raysched::error);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  util::RngStream rng(17);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 10.0, 5.0 * std::sqrt(trials));
  }
  EXPECT_THROW(rng.uniform_index(0), raysched::error);
}

TEST(Rng, BernoulliMatchesProbability) {
  util::RngStream rng(21);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), raysched::error);
  EXPECT_THROW(rng.bernoulli(-0.1), raysched::error);
}

TEST(Rng, ExponentialMeanAndVariance) {
  util::RngStream rng(33);
  sim::Accumulator acc;
  const double mean = 2.5;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential_mean(mean);
    ASSERT_GE(x, 0.0);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), mean, 0.05);
  EXPECT_NEAR(acc.variance(), mean * mean, 0.2);
}

TEST(Rng, ExponentialZeroMeanIsZero) {
  util::RngStream rng(1);
  EXPECT_EQ(rng.exponential_mean(0.0), 0.0);
  EXPECT_THROW(rng.exponential_mean(-1.0), raysched::error);
}

TEST(Rng, ExponentialSurvivalFunction) {
  // P[X > mean] should be e^-1 for an exponential with that mean.
  util::RngStream rng(55);
  const double mean = 1.7;
  int above = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (rng.exponential_mean(mean) > mean) ++above;
  }
  EXPECT_NEAR(above / static_cast<double>(trials), std::exp(-1.0), 0.01);
}

TEST(Rng, NormalMoments) {
  util::RngStream rng(77);
  sim::Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.variance(), 1.0, 0.05);
}

TEST(Rng, SplitMix64ReferenceValues) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation (Vigna): first three outputs.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(s), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace raysched::util
