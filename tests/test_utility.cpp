// Tests for the Definition-1 utility framework.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::core {
namespace {

TEST(Utility, BinaryThreshold) {
  const Utility u = Utility::binary(units::Threshold(2.5));
  EXPECT_DOUBLE_EQ(u.value(2.4999), 0.0);
  EXPECT_DOUBLE_EQ(u.value(2.5), 1.0);
  EXPECT_DOUBLE_EQ(u.value(100.0), 1.0);
  EXPECT_TRUE(u.is_binary());
  EXPECT_TRUE(u.is_threshold());
  EXPECT_DOUBLE_EQ(u.beta().value(), 2.5);
  EXPECT_DOUBLE_EQ(u.weight(), 1.0);
  EXPECT_DOUBLE_EQ(u.concave_from(), 2.5);
}

TEST(Utility, WeightedThreshold) {
  const Utility u = Utility::weighted(units::Threshold(1.0), 3.5);
  EXPECT_DOUBLE_EQ(u.value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(u.value(1.5), 3.5);
  EXPECT_FALSE(u.is_binary());
  EXPECT_TRUE(u.is_threshold());
  EXPECT_DOUBLE_EQ(u.weight(), 3.5);
}

TEST(Utility, ShannonIsLog1p) {
  const Utility u = Utility::shannon();
  EXPECT_DOUBLE_EQ(u.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(u.value(1.0), std::log(2.0));
  EXPECT_DOUBLE_EQ(u.value(std::exp(1.0) - 1.0), 1.0);
  EXPECT_FALSE(u.is_threshold());
  EXPECT_THROW(u.beta(), raysched::error);
  EXPECT_THROW(u.weight(), raysched::error);
}

TEST(Utility, CustomUtility) {
  const Utility u =
      Utility::custom([](double g) { return std::sqrt(g); }, 0.0, "sqrt");
  EXPECT_DOUBLE_EQ(u.value(4.0), 2.0);
  EXPECT_EQ(u.name(), "sqrt");
  // Custom returning negative values is rejected at evaluation time.
  const Utility bad =
      Utility::custom([](double g) { return g - 1.0; }, 0.0, "bad");
  EXPECT_THROW(bad.value(0.5), raysched::error);
}

TEST(Utility, NegativeSinrRejected) {
  EXPECT_THROW(Utility::binary(units::Threshold(1.0)).value(-0.1), raysched::error);
}

TEST(Utility, InvalidConstruction) {
  EXPECT_THROW(Utility::binary(units::Threshold(0.0)), raysched::error);
  EXPECT_THROW(Utility::weighted(units::Threshold(-1.0), 1.0), raysched::error);
  EXPECT_THROW(Utility::weighted(units::Threshold(1.0), -1.0), raysched::error);
  EXPECT_THROW(Utility::custom(nullptr, 0.0), raysched::error);
}

TEST(Utility, Definition1ValidityBinary) {
  // hand_matrix_network: S(i,i) = 10, noise 0.1. Binary beta is valid for c
  // iff beta <= S(i,i)/(c*nu) = 100/c.
  auto net = raysched::testing::hand_matrix_network(0.1);
  const Utility u = Utility::binary(units::Threshold(2.0));
  EXPECT_TRUE(u.is_valid_for(net, 0, 2.0));    // 100/2 = 50 >= 2
  EXPECT_TRUE(u.is_valid_for(net, 0, 49.0));   // 100/49 ~ 2.04 >= 2
  EXPECT_FALSE(u.is_valid_for(net, 0, 51.0));  // 100/51 < 2
  EXPECT_NEAR(u.max_valid_c(net, 0), 50.0, 1e-12);
}

TEST(Utility, Definition1AlwaysValidWithoutNoise) {
  auto net = raysched::testing::hand_matrix_network(0.0);
  const Utility u = Utility::binary(units::Threshold(1000.0));
  EXPECT_TRUE(u.is_valid_for(net, 0, 2.0));
  EXPECT_TRUE(std::isinf(u.max_valid_c(net, 0)));
}

TEST(Utility, ShannonAlwaysValid) {
  auto net = raysched::testing::hand_matrix_network(5.0);
  const Utility u = Utility::shannon();
  EXPECT_TRUE(u.is_valid_for(net, 0, 1000.0));
  EXPECT_TRUE(std::isinf(u.max_valid_c(net, 0)));
}

TEST(Utility, NoValidCWhenNoiseDominates) {
  // signal 10, noise 10: binary beta 2 needs c <= 10/(2*10) = 0.5 < 1.
  auto net = raysched::testing::hand_matrix_network(10.0);
  const Utility u = Utility::binary(units::Threshold(2.0));
  EXPECT_DOUBLE_EQ(u.max_valid_c(net, 0), 0.0);
  EXPECT_FALSE(u.is_valid_for(net, 0, 1.5));
}

TEST(Utility, CRangeValidation) {
  auto net = raysched::testing::hand_matrix_network();
  EXPECT_THROW(Utility::binary(units::Threshold(1.0)).is_valid_for(net, 0, 1.0),
               raysched::error);
  EXPECT_THROW(Utility::binary(units::Threshold(1.0)).is_valid_for(net, 9, 2.0),
               raysched::error);
}

TEST(Utility, TotalUtilitySums) {
  const Utility u = Utility::binary(units::Threshold(1.0));
  EXPECT_DOUBLE_EQ(total_utility(u, {0.5, 1.5, 2.5}), 2.0);
  const Utility s = Utility::shannon();
  EXPECT_NEAR(total_utility(s, {1.0, 1.0}), 2.0 * std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(total_utility(u, {}), 0.0);
}

}  // namespace
}  // namespace raysched::core
