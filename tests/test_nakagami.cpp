// Tests for the Nakagami-m fading extension and the incomplete gamma
// implementation behind it.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::model {
namespace {

using raysched::testing::hand_matrix_network;

TEST(RegularizedGammaQ, KnownValues) {
  // Q(1, x) = e^-x.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_q(1.0, x), std::exp(-x), 1e-12) << x;
  }
  // Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.5, 0.0), 1.0);
  // Q(2, x) = e^-x (1 + x).
  EXPECT_NEAR(regularized_gamma_q(2.0, 1.5), std::exp(-1.5) * 2.5, 1e-12);
  // Q(3, x) = e^-x (1 + x + x^2/2).
  EXPECT_NEAR(regularized_gamma_q(3.0, 2.0), std::exp(-2.0) * 5.0, 1e-12);
  // Q(1/2, x) = erfc(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_q(0.5, 2.0), std::erfc(std::sqrt(2.0)),
              1e-12);
}

TEST(RegularizedGammaQ, MonotoneAndBounded) {
  double prev = 1.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double q = regularized_gamma_q(3.0, x);
    EXPECT_LE(q, prev + 1e-15);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    prev = q;
  }
  EXPECT_THROW(regularized_gamma_q(0.0, 1.0), raysched::error);
  EXPECT_THROW(regularized_gamma_q(1.0, -1.0), raysched::error);
}

TEST(GammaSampling, MomentsMatch) {
  util::RngStream rng(1);
  for (double shape : {0.5, 1.0, 2.0, 5.0}) {
    sim::Accumulator acc;
    for (int i = 0; i < 40000; ++i) acc.add(rng.gamma(shape));
    EXPECT_NEAR(acc.mean(), shape, 0.05 * std::max(1.0, shape)) << shape;
    EXPECT_NEAR(acc.variance(), shape, 0.1 * std::max(1.0, shape)) << shape;
  }
  EXPECT_THROW(rng.gamma(0.0), raysched::error);
}

TEST(Nakagami, GainMomentsMatch) {
  // Gain ~ Gamma(m, mean/m): E = mean, Var = mean^2 / m.
  util::RngStream rng(2);
  const double mean = 3.0, m = 4.0;
  sim::Accumulator acc;
  for (int i = 0; i < 40000; ++i) {
    acc.add(sample_gain_nakagami(mean, m, rng));
  }
  EXPECT_NEAR(acc.mean(), mean, 0.05);
  EXPECT_NEAR(acc.variance(), mean * mean / m, 0.15);
}

TEST(Nakagami, MEqualsOneIsRayleigh) {
  // Same success probabilities as the Rayleigh closed form, statistically.
  auto net = hand_matrix_network(0.2);
  const LinkSet active = {0, 1, 2};
  const double beta = 1.5;
  const double rayleigh_exact =
      success_probability_rayleigh(net, active, 0, units::Threshold(beta)).value();
  util::RngStream rng(3);
  const double nakagami_mc = success_probability_nakagami_mc(
      net, active, 0, units::Threshold(beta), 1.0, 40000, rng);
  EXPECT_NEAR(nakagami_mc, rayleigh_exact, 0.012);
}

TEST(Nakagami, LargeMApproachesNonFading) {
  // m -> infinity concentrates gains at their means; the success indicator
  // converges to the deterministic SINR test.
  auto net = hand_matrix_network(0.1);
  const LinkSet active = {0, 1, 2};
  // Non-fading SINR of link 0 is ~3.85: success at beta=3 (deterministically
  // yes) and failure at beta=5 (deterministically no).
  util::RngStream rng(4);
  const double p_yes = success_probability_nakagami_mc(
      net, active, 0, units::Threshold(3.0), 200.0, 4000, rng);
  const double p_no = success_probability_nakagami_mc(
      net, active, 0, units::Threshold(5.0), 200.0, 4000, rng);
  EXPECT_GT(p_yes, 0.95);
  EXPECT_LT(p_no, 0.05);
}

TEST(Nakagami, SmallMFadesHarderThanRayleigh) {
  // m < 1 has heavier fluctuation: success probability of a comfortably
  // feasible link drops below the Rayleigh value.
  auto net = hand_matrix_network(0.1);
  const LinkSet active = {0};
  const double beta = 2.0;  // alone, non-fading SINR = 100 >> beta
  util::RngStream rng(5);
  const double rayleigh = success_probability_rayleigh(net, active, 0, units::Threshold(beta)).value();
  const double hard = success_probability_nakagami_mc(net, active, 0, units::Threshold(beta),
                                                      0.5, 40000, rng);
  EXPECT_LT(hard, rayleigh);
}

TEST(Nakagami, NoiseOnlyClosedFormMatchesMc) {
  const double mean = 10.0, noise = 0.5, beta = 3.0;
  for (double m : {1.0, 2.0, 4.0}) {
    const double exact =
        noise_only_success_probability_nakagami(units::LinearGain(mean), units::Power(noise), units::Threshold(beta), m).value();
    util::RngStream rng(static_cast<std::uint64_t>(m * 100));
    int hits = 0;
    const int trials = 40000;
    for (int t = 0; t < trials; ++t) {
      if (sample_gain_nakagami(mean, m, rng) >= beta * noise) ++hits;
    }
    EXPECT_NEAR(hits / static_cast<double>(trials), exact, 0.012) << "m=" << m;
  }
}

TEST(Nakagami, NoiseOnlyMatchesRayleighAtMOne) {
  EXPECT_NEAR(noise_only_success_probability_nakagami(units::LinearGain(10.0), units::Power(0.5), units::Threshold(3.0), 1.0).value(),
              std::exp(-3.0 * 0.5 / 10.0), 1e-12);
}

TEST(Nakagami, SlotApiShapes) {
  auto net = hand_matrix_network(0.1);
  util::RngStream rng(6);
  const auto sinrs = sinr_nakagami_all(net, {0, 2}, 2.0, rng);
  ASSERT_EQ(sinrs.size(), 2u);
  for (double g : sinrs) EXPECT_GE(g, 0.0);
  const auto wins = count_successes_nakagami(net, {0, 1, 2}, units::Threshold(1.0), 2.0, rng);
  EXPECT_LE(wins, 3u);
  const double expected =
      expected_successes_nakagami_mc(net, {0, 1, 2}, units::Threshold(1.0), 2.0, 500, rng);
  EXPECT_GE(expected, 0.0);
  EXPECT_LE(expected, 3.0);
}

TEST(Nakagami, ValidatesInput) {
  auto net = hand_matrix_network();
  util::RngStream rng(1);
  EXPECT_THROW(sample_gain_nakagami(1.0, 0.0, rng), raysched::error);
  EXPECT_THROW(sinr_nakagami_all(net, {0}, -1.0, rng), raysched::error);
  EXPECT_THROW(
      success_probability_nakagami_mc(net, {1}, 0, units::Threshold(1.0), 1.0, 100, rng),
      raysched::error);
}

}  // namespace
}  // namespace raysched::model
