#include <gtest/gtest.h>

#include "util/logstar.hpp"

namespace raysched::util {
namespace {

TEST(LogStar, Base2KnownValues) {
  EXPECT_EQ(log_star_2(1.0), 0);
  EXPECT_EQ(log_star_2(2.0), 1);
  EXPECT_EQ(log_star_2(4.0), 2);
  EXPECT_EQ(log_star_2(16.0), 3);
  EXPECT_EQ(log_star_2(65536.0), 4);
  EXPECT_EQ(log_star_2(65537.0), 5);
}

TEST(LogStar, BaseEKnownValues) {
  EXPECT_EQ(log_star_e(1.0), 0);
  EXPECT_EQ(log_star_e(2.0), 1);          // ln 2 < 1
  EXPECT_EQ(log_star_e(15.0), 2);         // ln 15 ~ 2.7, ln 2.7 < 1
  EXPECT_EQ(log_star_e(3814279.0), 3);    // just below e^e^e ~ 3814279.1
  EXPECT_EQ(log_star_e(4000000.0), 4);    // just above e^e^e
}

TEST(LogStar, MonotoneNondecreasing) {
  int prev = 0;
  for (double n = 1.0; n < 1e12; n *= 3.0) {
    const int v = log_star_2(n);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LogStar, RejectsNonPositive) {
  EXPECT_THROW(log_star_2(0.0), raysched::error);
  EXPECT_THROW(log_star_e(-1.0), raysched::error);
}

TEST(Theorem2Sequence, StartsAtQuarterAndIterates) {
  const auto b = theorem2_b_sequence(100.0);
  ASSERT_GE(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0], 0.25);
  for (std::size_t k = 0; k + 1 < b.size(); ++k) {
    EXPECT_DOUBLE_EQ(b[k + 1], std::exp(b[k] / 2.0));
  }
  EXPECT_GE(b.back(), 100.0);
  EXPECT_LT(b[b.size() - 2], 100.0);
}

TEST(Theorem2Sequence, LevelsMatchSequenceLength) {
  for (std::size_t n : {1ul, 2ul, 10ul, 100ul, 1000ul, 1000000ul}) {
    const auto b = theorem2_b_sequence(static_cast<double>(n));
    // Number of levels = number of k with b_k < n = sequence length - 1
    // (the last term is the first >= n). Except when b_0 >= n already.
    const int expected =
        b[0] >= static_cast<double>(n) ? 0 : static_cast<int>(b.size()) - 1;
    EXPECT_EQ(theorem2_num_levels(n), expected) << "n=" << n;
  }
}

TEST(Theorem2Sequence, GrowthIsIteratedExponential) {
  // For n = 10^9 the schedule must still be tiny — that is the whole point
  // of the O(log* n) bound.
  EXPECT_LE(theorem2_num_levels(1000000000ul), 8);
  // And it grows extremely slowly.
  EXPECT_EQ(theorem2_num_levels(100ul), theorem2_num_levels(1000ul));
}

}  // namespace
}  // namespace raysched::util
