// Tests for the protocol (graph-based) interference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_helpers.hpp"

namespace raysched::model {
namespace {

using raysched::testing::paper_network;
using raysched::testing::two_close_links;
using raysched::testing::two_far_links;

TEST(InterferenceGraph, CloseLinksConflictFarLinksDont) {
  auto close = two_close_links();
  InterferenceGraph g_close(close, 2.0);
  EXPECT_TRUE(g_close.conflicts(0, 1));
  auto far = two_far_links();
  InterferenceGraph g_far(far, 2.0);
  EXPECT_FALSE(g_far.conflicts(0, 1));
}

TEST(InterferenceGraph, SymmetricAndIrreflexive) {
  auto net = paper_network(20, 5);
  InterferenceGraph g(net, 2.0);
  for (LinkId a = 0; a < net.size(); ++a) {
    EXPECT_FALSE(g.conflicts(a, a));
    for (LinkId b = 0; b < net.size(); ++b) {
      EXPECT_EQ(g.conflicts(a, b), g.conflicts(b, a));
    }
  }
}

TEST(InterferenceGraph, FactorMonotone) {
  // A larger interference range can only add conflicts.
  auto net = paper_network(25, 6);
  InterferenceGraph small(net, 1.5);
  InterferenceGraph large(net, 4.0);
  for (LinkId a = 0; a < net.size(); ++a) {
    for (LinkId b = 0; b < net.size(); ++b) {
      if (small.conflicts(a, b)) EXPECT_TRUE(large.conflicts(a, b));
    }
    EXPECT_LE(small.degree(a), large.degree(a));
  }
}

TEST(InterferenceGraph, ConflictRuleHandComputed) {
  // Link 0: length 2, receiver at (2,0). Link 1 sender at (5,0):
  // d(s_1, r_0) = 3. Factor 1.4 -> range 2.8 < 3: no conflict from this
  // side; check the other side too. Link 1: length 2, receiver at (7,0),
  // d(s_0, r_1) = 7 > 2.8: no conflict. Factor 1.6 -> range 3.2 >= 3:
  // conflict.
  std::vector<Link> links = {{Point{0, 0}, Point{2, 0}},
                             {Point{5, 0}, Point{7, 0}}};
  Network net(links, PowerAssignment::uniform(1.0), 2.0, units::Power(0.0));
  EXPECT_FALSE(InterferenceGraph(net, 1.4).conflicts(0, 1));
  EXPECT_TRUE(InterferenceGraph(net, 1.6).conflicts(0, 1));
}

TEST(InterferenceGraph, GreedyIndependentSetIsIndependentAndMaximal) {
  auto net = paper_network(40, 7);
  InterferenceGraph g(net, 2.0);
  const LinkSet set = g.greedy_independent_set();
  EXPECT_TRUE(g.is_independent(set));
  // Maximality: every vertex outside conflicts with some member.
  std::set<LinkId> members(set.begin(), set.end());
  for (LinkId v = 0; v < net.size(); ++v) {
    if (members.count(v)) continue;
    bool blocked = false;
    for (LinkId m : set) {
      if (g.conflicts(v, m)) {
        blocked = true;
        break;
      }
    }
    EXPECT_TRUE(blocked) << "vertex " << v << " could have been added";
  }
}

TEST(InterferenceGraph, ColoringIsProper) {
  auto net = paper_network(35, 8);
  InterferenceGraph g(net, 2.0);
  const auto colors = g.greedy_coloring();
  ASSERT_EQ(colors.size(), net.size());
  for (LinkId a = 0; a < net.size(); ++a) {
    for (LinkId b = a + 1; b < net.size(); ++b) {
      if (g.conflicts(a, b)) EXPECT_NE(colors[a], colors[b]);
    }
  }
  // Color classes are valid protocol-model slots covering every link.
  std::size_t num_colors = 0;
  for (std::size_t c : colors) num_colors = std::max(num_colors, c + 1);
  for (std::size_t c = 0; c < num_colors; ++c) {
    LinkSet slot;
    for (LinkId i = 0; i < net.size(); ++i) {
      if (colors[i] == c) slot.push_back(i);
    }
    EXPECT_TRUE(g.is_independent(slot));
  }
}

TEST(InterferenceGraph, GraphModelDivergesFromSinr) {
  // The motivating observation: protocol-model slots are neither sufficient
  // nor necessary for SINR feasibility. Over random instances, find at
  // least one independent set that is SINR-infeasible at a strict beta or
  // one SINR-feasible set that the graph forbids.
  bool found_disagreement = false;
  for (std::uint64_t seed = 0; seed < 10 && !found_disagreement; ++seed) {
    auto net = paper_network(30, 900 + seed);
    InterferenceGraph g(net, 1.5);
    const LinkSet independent = g.greedy_independent_set();
    if (!is_feasible(net, independent, units::Threshold(2.5))) found_disagreement = true;
    const LinkSet sinr_set = raysched::algorithms::greedy_capacity(net, 2.5)
                                 .selected;
    if (!g.is_independent(sinr_set)) found_disagreement = true;
  }
  EXPECT_TRUE(found_disagreement)
      << "graph and SINR models coincided on every instance; the contrast "
         "bench would be vacuous";
}

TEST(InterferenceGraph, Validation) {
  auto net = paper_network(5, 9);
  EXPECT_THROW(InterferenceGraph(net, 0.5), raysched::error);
  auto matrix_net = raysched::testing::hand_matrix_network();
  EXPECT_THROW(InterferenceGraph(matrix_net, 2.0), raysched::error);
  InterferenceGraph g(net, 2.0);
  EXPECT_THROW(g.conflicts(0, 9), raysched::error);
  EXPECT_THROW(g.degree(9), raysched::error);
}

}  // namespace
}  // namespace raysched::model
