// Relocation pin for the RNG move (sim/rng.hpp -> util/rng.hpp).
//
// util::RngStream must produce bit-identical sequences to the pre-move
// sim::RngStream: every Monte-Carlo result, checkpoint replay, and pinned
// regression value depends on the generator, so the namespace move must not
// perturb a single bit. The golden values below were captured from
// sim::RngStream at the last commit before the move; if any of these tests
// fail, the relocation changed the generator and every seeded experiment in
// the repo silently diverged. (The deprecated sim/rng.hpp forwarding shim
// served its one-release grace period and is gone; raysched_lint RS-L10
// rejects any attempt to include the old path again.)
#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace raysched::util {
namespace {

TEST(RngStreamRelocation, GoldenRawSequenceSeed42) {
  RngStream r(42);
  const std::uint64_t expected[] = {
      0xD0764D4F4476689FULL, 0x519E4174576F3791ULL, 0xFBE07CFB0C24ED8CULL,
      0xB37D9F600CD835B8ULL, 0xCB231C3874846A73ULL, 0x968D9F004E50DE7DULL,
      0x201718FF221A3556ULL, 0x9AE94E070ED8CB46ULL,
  };
  for (const std::uint64_t want : expected) EXPECT_EQ(r.next_u64(), want);
}

TEST(RngStreamRelocation, GoldenRawSequenceSeed0) {
  RngStream r(0);
  const std::uint64_t expected[] = {
      0x53175D61490B23DFULL, 0x61DA6F3DC380D507ULL, 0x5C0FDF91EC9A7BFCULL,
      0x02EEBF8C3BBE5E1AULL,
  };
  for (const std::uint64_t want : expected) EXPECT_EQ(r.next_u64(), want);
}

TEST(RngStreamRelocation, GoldenDerivedStreams) {
  RngStream base(7);
  RngStream child = base.derive(3);
  const std::uint64_t expected_child[] = {
      0x4D36D95CE05C85ACULL, 0xABB4EB7CE7DC652DULL, 0xF543DBBF64C1FFB2ULL,
      0xD8DEA20ED9FB46A8ULL,
  };
  for (const std::uint64_t want : expected_child) {
    EXPECT_EQ(child.next_u64(), want);
  }
  RngStream two_tag = base.derive(1, 2);
  const std::uint64_t expected_two_tag[] = {
      0x787BD832C66C566CULL, 0x58CA2CC8F206E823ULL, 0xA60D5E43736E106BULL,
      0xD4C5E091654979ABULL,
  };
  for (const std::uint64_t want : expected_two_tag) {
    EXPECT_EQ(two_tag.next_u64(), want);
  }
}

TEST(RngStreamRelocation, GoldenUniformDoubles) {
  // EXPECT_EQ on doubles on purpose: the pin is bitwise, not approximate.
  RngStream r(123);
  const double expected[] = {
      6.45848704029108212e-01, 8.38154212314795810e-01,
      6.65849804579044968e-01, 5.24365506212736698e-01,
  };
  for (const double want : expected) EXPECT_EQ(r.uniform(), want);
}

TEST(RngStreamRelocation, GoldenExponentialMean) {
  RngStream r(5);
  const double expected[] = {
      8.63358725614763345e-01, 2.36326543255429922e+00,
      2.57750060779834478e-01, 1.50997624107138323e-01,
  };
  for (const double want : expected) EXPECT_EQ(r.exponential_mean(2.5), want);
}

TEST(RngStreamRelocation, GoldenGamma) {
  RngStream r(9);
  const double expected[] = {
      5.12192738303105433e+00, 3.06297177945860422e-01,
      9.57536032468302656e-01, 2.97596748692728952e-01,
  };
  for (const double want : expected) EXPECT_EQ(r.gamma(1.7), want);
}

TEST(RngStreamRelocation, GoldenNormal) {
  RngStream r(11);
  const double expected[] = {
      3.61336994883308116e-01, 3.07790926928146968e-01,
      4.37229088355525430e-01, 9.72196865788952369e-02,
  };
  for (const double want : expected) EXPECT_EQ(r.normal(), want);
}

TEST(RngStreamRelocation, GoldenUniformIndex) {
  RngStream r(13);
  const std::uint64_t expected[] = {7, 7, 2, 4, 3, 5, 2, 3};
  for (const std::uint64_t want : expected) {
    EXPECT_EQ(r.uniform_index(10), want);
  }
}

}  // namespace
}  // namespace raysched::util
