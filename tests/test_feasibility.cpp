// Tests for the Perron-Frobenius power-control feasibility tools.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::model {
namespace {

using raysched::testing::paper_network;
using raysched::testing::two_close_links;
using raysched::testing::two_far_links;

TEST(SpectralRadius, TwoLinkClosedForm) {
  // For two links, M = [[0, a],[b, 0]] with rho = sqrt(ab).
  auto net = two_far_links(1e-6);
  const double beta = 2.0;
  const double g01 = net.mean_gain(0, 1) / net.power(0);
  const double g10 = net.mean_gain(1, 0) / net.power(1);
  const double g00 = net.signal(0) / net.power(0);
  const double g11 = net.signal(1) / net.power(1);
  const double expected = std::sqrt((beta * g10 / g00) * (beta * g01 / g11));
  EXPECT_NEAR(interference_spectral_radius(net, {0, 1}, units::Threshold(beta)), expected,
              1e-9 * expected + 1e-15);
}

TEST(SpectralRadius, SingletonAndEmptyAreZero) {
  auto net = two_far_links();
  EXPECT_DOUBLE_EQ(interference_spectral_radius(net, {0}, units::Threshold(2.0)), 0.0);
  EXPECT_DOUBLE_EQ(interference_spectral_radius(net, {}, units::Threshold(2.0)), 0.0);
}

TEST(SpectralRadius, GrowsWithBeta) {
  auto net = two_close_links(1e-6);
  const double r1 = interference_spectral_radius(net, {0, 1}, units::Threshold(0.5));
  const double r2 = interference_spectral_radius(net, {0, 1}, units::Threshold(2.0));
  EXPECT_LT(r1, r2);
  EXPECT_NEAR(r2, 4.0 * r1, 1e-9);  // rho is linear in beta
}

TEST(Feasibility, FarLinksFeasibleCloseLinksNot) {
  auto far = two_far_links(1e-6);
  EXPECT_TRUE(power_controlled_feasible(far, {0, 1}, units::Threshold(2.0)));
  auto close = two_close_links(1e-6);
  // Co-located links at beta = 2: rho = beta * sqrt(g01 g10 / (g00 g11)).
  // Cross distance^2 = 1.25 vs own 1: rho = 2 * (1/1.25) = 1.6 > 1.
  EXPECT_FALSE(power_controlled_feasible(close, {0, 1}, units::Threshold(2.0)));
  // Small enough beta flips it.
  EXPECT_TRUE(power_controlled_feasible(close, {0, 1}, units::Threshold(0.5)));
}

TEST(Feasibility, MatchesFixedPowerFeasibilityOneWay) {
  // Fixed-power feasibility implies power-controlled feasibility (strict
  // SINR slack implies rho < 1 is not generally immediate, but on feasible
  // sets produced by the greedy with tau = 1 it must hold: keeping the
  // current powers is one valid assignment... up to boundary cases, so use
  // a margin via tau < 1).
  for (std::uint64_t seed : {1, 2, 3}) {
    auto net = paper_network(30, seed);
    algorithms::GreedyOptions opts;
    opts.tau = 0.8;
    const auto greedy = algorithms::greedy_capacity(net, 2.5, {}, opts);
    if (greedy.selected.size() >= 2) {
      EXPECT_TRUE(power_controlled_feasible(net, greedy.selected, units::Threshold(2.5)))
          << "seed " << seed;
    }
  }
}

TEST(MinimalPowers, SatisfyAllConstraintsWithEquality) {
  auto net = two_far_links(1e-3);
  const double beta = 2.0;
  const auto powers = minimal_feasible_powers(net, {0, 1}, units::Threshold(beta));
  ASSERT_TRUE(powers.has_value());
  ASSERT_EQ(powers->size(), 2u);
  // Verify SINR == beta (minimality binds every constraint) by applying the
  // powers.
  model::Network powered = net;
  powered.set_powers({(*powers)[0], (*powers)[1]});
  for (LinkId i : {0ul, 1ul}) {
    EXPECT_NEAR(sinr_nonfading(powered, {0, 1}, i), beta, 1e-6);
  }
}

TEST(MinimalPowers, MinimalityAgainstScaledDown) {
  auto net = two_far_links(1e-3);
  const double beta = 2.0;
  const auto powers = minimal_feasible_powers(net, {0, 1}, units::Threshold(beta));
  ASSERT_TRUE(powers.has_value());
  // Shrinking any coordinate breaks its constraint.
  for (std::size_t k = 0; k < 2; ++k) {
    auto reduced = *powers;
    reduced[k] *= 0.95;
    model::Network powered = net;
    powered.set_powers({reduced[0], reduced[1]});
    EXPECT_LT(sinr_nonfading(powered, {0, 1}, k), beta);
  }
}

TEST(MinimalPowers, InfeasibleReturnsNullopt) {
  auto close = two_close_links(1e-3);
  EXPECT_FALSE(minimal_feasible_powers(close, {0, 1}, units::Threshold(2.0)).has_value());
}

TEST(MinimalPowers, RequiresPositiveNoise) {
  auto net = two_far_links(0.0);
  EXPECT_THROW(minimal_feasible_powers(net, {0, 1}, units::Threshold(2.0)), raysched::error);
}

TEST(MinimalPowers, EmptySetIsEmpty) {
  auto net = two_far_links(1e-3);
  const auto powers = minimal_feasible_powers(net, {}, units::Threshold(2.0));
  ASSERT_TRUE(powers.has_value());
  EXPECT_TRUE(powers->empty());
}

TEST(Feasibility, PowerControlAlgorithmOutputIsSpectrallyFeasible) {
  // The set selected by power_control_capacity must satisfy rho < 1 — the
  // certificate that feasible powers exist.
  for (std::uint64_t seed : {10, 20}) {
    auto net = paper_network(30, seed);
    const auto result = algorithms::power_control_capacity(net, 2.5);
    if (result.selected.size() >= 2) {
      EXPECT_TRUE(power_controlled_feasible(net, result.selected, units::Threshold(2.5)))
          << "seed " << seed;
    }
  }
}

TEST(Feasibility, ValidatesInput) {
  auto net = two_far_links();
  EXPECT_THROW(interference_spectral_radius(net, {0, 1}, units::Threshold(0.0)),
               raysched::error);
  EXPECT_THROW(interference_spectral_radius(net, {0, 9}, units::Threshold(1.0)),
               raysched::error);
}

}  // namespace
}  // namespace raysched::model
