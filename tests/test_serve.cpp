// Unit tests for the serve layer's building blocks: traffic generators,
// the health state machine, fault scripts, the schedule agent, and the
// snapshot codec. The end-to-end fault scenarios live in
// test_serve_faults.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "test_helpers.hpp"

namespace raysched::serve {
namespace {

using raysched::testing::paper_network;

// ---- traffic --------------------------------------------------------------

TEST(ServeTraffic, InactiveLinksConsumeNoRandomness) {
  TrafficConfig config;
  config.model = TrafficModel::Poisson;
  config.mean_rate = 0.5;
  TrafficGenerator gen(config, 4);

  // Masking out links 1 and 3 must leave links 0 and 2 with exactly the
  // draws they would see if the masked links did not exist.
  util::RngStream a(42), b(42);
  std::vector<std::uint32_t> all_out, masked_out;
  TrafficGenerator gen2(config, 2);
  std::vector<char> mask = {1, 0, 1, 0};
  gen.arrivals(a, mask, all_out);
  gen2.arrivals(b, {1, 1}, masked_out);
  EXPECT_EQ(all_out[0], masked_out[0]);
  EXPECT_EQ(all_out[2], masked_out[1]);
  EXPECT_EQ(all_out[1], 0u);
  EXPECT_EQ(all_out[3], 0u);
}

TEST(ServeTraffic, BurstyStateRoundTripsAndModulates) {
  TrafficConfig config;
  config.model = TrafficModel::Bursty;
  config.burst_on = units::Probability(1.0);   // switches on immediately
  config.burst_off = units::Probability(0.0);  // never switches off
  config.on_rate = units::Probability(1.0);    // always delivers while on
  TrafficGenerator gen(config, 3);
  EXPECT_EQ(gen.burst_state().size(), 3u);

  util::RngStream rng(1);
  std::vector<std::uint32_t> out;
  std::vector<char> active(3, 1);
  gen.arrivals(rng, active, out);  // slot 0: all links switch on, no packet
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 0, 0}));
  gen.arrivals(rng, active, out);  // slot 1: all links on, all deliver
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 1, 1}));

  // A fresh generator restored with the captured "all on" state must
  // deliver immediately — set_burst_state feeds the draw path, skipping
  // the switch-on slot.
  TrafficGenerator fresh(config, 3);
  fresh.set_burst_state(gen.burst_state());
  util::RngStream rng2(7);
  fresh.arrivals(rng2, active, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 1, 1}));
  // Non-bursty models keep no state and reject a sized vector.
  TrafficConfig poisson;
  TrafficGenerator plain(poisson, 3);
  EXPECT_THROW(plain.set_burst_state(std::vector<char>(3, 1)),
               raysched::error);
}

TEST(ServeTraffic, HeavyTailedBatchesAreCapped) {
  TrafficConfig config;
  config.model = TrafficModel::HeavyTailed;
  config.batch_prob = units::Probability(1.0);
  config.tail_alpha = 0.5;  // infinite-mean regime: cap must bite
  config.max_batch = 16;
  TrafficGenerator gen(config, 8);
  util::RngStream rng(3);
  std::vector<std::uint32_t> out;
  std::vector<char> active(8, 1);
  for (int slot = 0; slot < 50; ++slot) {
    gen.arrivals(rng, active, out);
    for (std::uint32_t a : out) {
      EXPECT_GE(a, 1u);
      EXPECT_LE(a, 16u);
    }
  }
}

TEST(ServeTraffic, ModelNamesRoundTrip) {
  for (TrafficModel m : {TrafficModel::Poisson, TrafficModel::Bursty,
                         TrafficModel::HeavyTailed}) {
    EXPECT_EQ(traffic_model_from_string(to_string(m)), m);
  }
  EXPECT_THROW(traffic_model_from_string("fractal"), raysched::error);
}

// ---- health ---------------------------------------------------------------

TEST(ServeHealth, FreshMonitorIsHealthy) {
  HealthMonitor monitor{HealthConfig{}};
  monitor.end_slot(0, 0, false);
  EXPECT_EQ(monitor.state(), HealthState::Healthy);
  EXPECT_TRUE(monitor.transitions().empty());
}

TEST(ServeHealth, TimeoutDegradesAndRecoveryHeals) {
  HealthConfig config;
  config.recover_after_slots = 4;
  HealthMonitor monitor(config);
  monitor.on_recompute_timeout(10);
  monitor.end_slot(10, 0, true);
  EXPECT_EQ(monitor.state(), HealthState::Degraded);
  // Stale slots do not advance the countdown.
  monitor.end_slot(11, 0, true);
  EXPECT_EQ(monitor.state(), HealthState::Degraded);
  for (std::uint64_t s = 12; s < 16; ++s) monitor.end_slot(s, 0, false);
  EXPECT_EQ(monitor.state(), HealthState::Healthy);
  ASSERT_EQ(monitor.transitions().size(), 2u);
  EXPECT_EQ(monitor.transitions()[1].to, HealthState::Healthy);
}

TEST(ServeHealth, OverloadUsesHysteresis) {
  HealthConfig config;
  config.overload_enter_backlog = 100;
  config.overload_exit_backlog = 50;
  HealthMonitor monitor(config);
  monitor.end_slot(0, 99, false);
  EXPECT_EQ(monitor.state(), HealthState::Healthy);
  monitor.end_slot(1, 100, false);
  EXPECT_EQ(monitor.state(), HealthState::Overloaded);
  // Between exit and enter: still latched.
  monitor.end_slot(2, 75, false);
  EXPECT_EQ(monitor.state(), HealthState::Overloaded);
  monitor.end_slot(3, 50, false);
  EXPECT_NE(monitor.state(), HealthState::Overloaded);
}

TEST(ServeHealth, PoisonStreakQuarantinesUntilCleanRecompute) {
  HealthConfig config;
  config.quarantine_after = 2;
  HealthMonitor monitor(config);
  monitor.on_recompute_error(0, ErrorCode::PoisonedInput);
  monitor.end_slot(0, 0, true);
  EXPECT_EQ(monitor.state(), HealthState::Degraded);
  monitor.on_recompute_error(1, ErrorCode::PoisonedInput);
  monitor.end_slot(1, 0, true);
  EXPECT_EQ(monitor.state(), HealthState::Quarantined);
  // A non-poison failure does not lift quarantine...
  monitor.on_recompute_error(2, ErrorCode::Internal);
  monitor.end_slot(2, 0, true);
  EXPECT_EQ(monitor.state(), HealthState::Quarantined);
  // ...only a clean adoption does.
  monitor.on_recompute_ok(3);
  monitor.end_slot(3, 0, false);
  EXPECT_NE(monitor.state(), HealthState::Quarantined);
}

TEST(ServeHealth, PersistedRoundTrip) {
  HealthConfig config;
  HealthMonitor monitor(config);
  monitor.on_recompute_error(0, ErrorCode::PoisonedInput);
  monitor.end_slot(0, 5000, true);
  const HealthMonitor::Persisted saved = monitor.persisted();

  HealthMonitor restored(config);
  restored.restore(saved);
  EXPECT_EQ(restored.state(), monitor.state());
  // Same follow-up events must produce the same next state.
  monitor.end_slot(1, 5000, true);
  restored.end_slot(1, 5000, true);
  EXPECT_EQ(restored.state(), monitor.state());
}

TEST(ServeHealth, ValidationRejectsInvertedHysteresis) {
  HealthConfig config;
  config.overload_enter_backlog = 10;
  config.overload_exit_backlog = 10;
  EXPECT_THROW(HealthMonitor{config}, raysched::error);
}

// ---- fault script ---------------------------------------------------------

TEST(ServeFaultScript, ParsesTheCanonicalSchedule) {
  const FaultScript script = FaultScript::parse(
      "120:delay:10,300:poison-on,380:poison-off,500:churn-burst:0.2,"
      "900:crash");
  ASSERT_EQ(script.events().size(), 5u);
  EXPECT_EQ(script.events()[0].kind, FaultKind::RecomputeDelay);
  EXPECT_DOUBLE_EQ(script.events()[0].arg, 10.0);
  EXPECT_EQ(script.events()[4].kind, FaultKind::Crash);

  std::vector<FaultEvent> fired;
  script.events_in_slot(300, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::PoisonOn);
}

TEST(ServeFaultScript, PeriodicScriptsRefireButCrashDoesNot) {
  const FaultScript script =
      FaultScript::parse("10:delay:5,40:crash", /*period=*/100);
  std::vector<FaultEvent> fired;
  script.events_in_slot(210, fired);  // 210 % 100 == 10
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::RecomputeDelay);
  fired.clear();
  script.events_in_slot(140, fired);  // crash re-fire suppressed
  EXPECT_TRUE(fired.empty());
  fired.clear();
  script.events_in_slot(40, fired);  // literal slot still fires
  ASSERT_EQ(fired.size(), 1u);
}

TEST(ServeFaultScript, PoisonWindowReconstruction) {
  const FaultScript script =
      FaultScript::parse("300:poison-on,380:poison-off");
  EXPECT_FALSE(script.poison_active_before(300));
  EXPECT_TRUE(script.poison_active_before(301));
  EXPECT_TRUE(script.poison_active_before(380));
  EXPECT_FALSE(script.poison_active_before(381));
}

TEST(ServeFaultScript, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultScript::parse("10:frobnicate"), raysched::error);
  EXPECT_THROW(FaultScript::parse("10:delay"), raysched::error);
  EXPECT_THROW(FaultScript::parse("10:delay:0"), raysched::error);
  EXPECT_THROW(FaultScript::parse("10:churn-burst:1.5"), raysched::error);
  EXPECT_THROW(FaultScript::parse("x:crash"), raysched::error);
  // Periodic scripts refuse events beyond the period.
  EXPECT_THROW(FaultScript::parse("150:poison-on", 100), raysched::error);
}

// ---- schedule agent -------------------------------------------------------

TEST(ServeAgent, ComputesAMaxWeightSchedule) {
  auto net = paper_network(12, 21);
  ScheduleAgent agent(net, units::Threshold(2.5), 1);
  std::vector<double> weights(net.size(), 1.0);
  weights[3] = 100.0;
  agent.submit(0, weights, 1);
  RecomputeOutcome outcome = agent.reap();
  ASSERT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.schedule.empty());
  // The dominant-weight link must be part of any max-weight greedy pick.
  EXPECT_NE(std::find(outcome.schedule.begin(), outcome.schedule.end(), 3u),
            outcome.schedule.end());
}

TEST(ServeAgent, PoisonedWeightsBecomeStructuredFailures) {
  auto net = paper_network(6, 22);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ScheduleAgent agent(net, units::Threshold(2.5), threads);
    std::vector<double> weights(net.size(),
                                std::numeric_limits<double>::quiet_NaN());
    agent.submit(0, weights, 1);
    RecomputeOutcome outcome = agent.reap();
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, ErrorCode::PoisonedInput);
    // The agent survives a failure: the next submit succeeds.
    agent.submit(1, std::vector<double>(net.size(), 1.0), 1);
    EXPECT_TRUE(agent.reap().ok);
  }
}

TEST(ServeAgent, InlineAndThreadedAgreeBitIdentically) {
  auto net = paper_network(16, 23);
  std::vector<double> weights(net.size(), 0.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    weights[i] = static_cast<double>((i * 7) % 5);
  }
  ScheduleAgent inline_agent(net, units::Threshold(2.5), 1);
  ScheduleAgent pool_agent(net, units::Threshold(2.5), 4);
  inline_agent.submit(0, weights, 1);
  pool_agent.submit(0, weights, 1);
  EXPECT_EQ(inline_agent.reap().schedule, pool_agent.reap().schedule);
}

TEST(ServeAgent, ProtocolViolationsThrow) {
  auto net = paper_network(4, 24);
  ScheduleAgent agent(net, units::Threshold(2.5), 1);
  EXPECT_THROW((void)agent.reap(), raysched::error);  // nothing in flight
  EXPECT_THROW(agent.submit(0, std::vector<double>(2, 1.0), 1),
               raysched::error);  // wrong size
  EXPECT_THROW(agent.submit(0, std::vector<double>(4, 1.0), 0),
               raysched::error);  // zero latency
}

// ---- snapshot codec -------------------------------------------------------

ServeSnapshot sample_snapshot() {
  ServeSnapshot snap;
  snap.master_seed = 99;
  snap.num_links = 3;
  snap.beta = 2.5;
  snap.propagation = "nonfading";
  snap.traffic_model = "bursty";
  snap.policy = "ahm";
  snap.next_slot = 1234;
  snap.health.state = HealthState::Degraded;
  snap.health.poison_streak = 1;
  snap.health.clean_slots = 7;
  snap.arrivals_total = 1000;
  snap.admitted_total = 990;
  snap.served_total = 900;
  snap.dropped_capacity = 4;
  snap.dropped_shed = 3;
  snap.dropped_churn = 2;
  snap.dropped_quarantine = 1;
  snap.stale_pruned = 9;
  snap.recompute_timeouts = 5;
  snap.recompute_failures = 6;
  snap.recompute_adoptions = 70;
  snap.schedule_epoch = 70;
  snap.schedule_stale = true;
  snap.schedule = {0, 2};
  snap.queues = {50, 30, 10};
  snap.active = {1, 0, 1};
  snap.burst_state = {0, 1, 0};
  snap.departed_flags = {0, 1, 0};
  snap.feedback_attempt = {1, 0, 1};
  snap.feedback_success = {1, 0, 0};
  snap.policy_state = {0.25, 0.5, 0.015625};
  snap.recompute.in_flight = true;
  snap.recompute.submit_slot = 1230;
  snap.recompute.latency_slots = 12;
  snap.recompute.timed_out = true;
  snap.recompute.poisoned = true;
  snap.recompute.weights = {50.0, 0.0, 10.0};
  snap.recompute.departed = {1};
  snap.recompute.feedback_schedule = {0, 2};
  snap.recompute.feedback_success = {1, 0};
  snap.backoff_slots = 8;
  snap.cooldown_until = 1240;
  snap.pending_extra_latency = 3;
  snap.poison_active = true;
  return snap;
}

TEST(ServeSnapshot, RoundTripsEveryField) {
  const ServeSnapshot snap = sample_snapshot();
  std::stringstream ss;
  write_snapshot(ss, snap);
  const ServeSnapshot back = read_snapshot(ss);
  EXPECT_EQ(back.master_seed, snap.master_seed);
  EXPECT_EQ(back.num_links, snap.num_links);
  EXPECT_DOUBLE_EQ(back.beta, snap.beta);
  EXPECT_EQ(back.propagation, snap.propagation);
  EXPECT_EQ(back.traffic_model, snap.traffic_model);
  EXPECT_EQ(back.policy, snap.policy);
  EXPECT_EQ(back.next_slot, snap.next_slot);
  EXPECT_EQ(back.health.state, snap.health.state);
  EXPECT_EQ(back.health.poison_streak, snap.health.poison_streak);
  EXPECT_EQ(back.health.clean_slots, snap.health.clean_slots);
  EXPECT_EQ(back.arrivals_total, snap.arrivals_total);
  EXPECT_EQ(back.served_total, snap.served_total);
  EXPECT_EQ(back.dropped_capacity, snap.dropped_capacity);
  EXPECT_EQ(back.dropped_shed, snap.dropped_shed);
  EXPECT_EQ(back.dropped_churn, snap.dropped_churn);
  EXPECT_EQ(back.dropped_quarantine, snap.dropped_quarantine);
  EXPECT_EQ(back.stale_pruned, snap.stale_pruned);
  EXPECT_EQ(back.schedule_epoch, snap.schedule_epoch);
  EXPECT_EQ(back.schedule_stale, snap.schedule_stale);
  EXPECT_EQ(back.schedule, snap.schedule);
  EXPECT_EQ(back.queues, snap.queues);
  EXPECT_EQ(back.active, snap.active);
  EXPECT_EQ(back.burst_state, snap.burst_state);
  EXPECT_EQ(back.departed_flags, snap.departed_flags);
  EXPECT_EQ(back.feedback_attempt, snap.feedback_attempt);
  EXPECT_EQ(back.feedback_success, snap.feedback_success);
  EXPECT_EQ(back.policy_state, snap.policy_state);
  EXPECT_TRUE(back.recompute.in_flight);
  EXPECT_EQ(back.recompute.submit_slot, snap.recompute.submit_slot);
  EXPECT_EQ(back.recompute.latency_slots, snap.recompute.latency_slots);
  EXPECT_EQ(back.recompute.timed_out, snap.recompute.timed_out);
  EXPECT_EQ(back.recompute.poisoned, snap.recompute.poisoned);
  EXPECT_EQ(back.recompute.weights, snap.recompute.weights);
  EXPECT_EQ(back.recompute.departed, snap.recompute.departed);
  EXPECT_EQ(back.recompute.feedback_schedule,
            snap.recompute.feedback_schedule);
  EXPECT_EQ(back.recompute.feedback_success,
            snap.recompute.feedback_success);
  EXPECT_EQ(back.backoff_slots, snap.backoff_slots);
  EXPECT_EQ(back.cooldown_until, snap.cooldown_until);
  EXPECT_EQ(back.pending_extra_latency, snap.pending_extra_latency);
  EXPECT_EQ(back.poison_active, snap.poison_active);
}

TEST(ServeSnapshot, RejectsCorruptedInput) {
  const ServeSnapshot snap = sample_snapshot();
  std::stringstream good;
  write_snapshot(good, snap);
  const std::string text = good.str();

  // Truncation at any structural boundary is a SnapshotFormat error.
  {
    std::istringstream truncated(text.substr(0, text.size() / 2));
    try {
      (void)read_snapshot(truncated);
      FAIL() << "truncated snapshot parsed";
    } catch (const coded_error& e) {
      EXPECT_EQ(e.code(), ErrorCode::SnapshotFormat);
    }
  }
  // A schedule id >= n must be rejected.
  {
    std::string bad = text;
    const auto pos = bad.find("schedule 2 : 0 2");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 16, "schedule 2 : 0 9");
    std::istringstream is(bad);
    EXPECT_THROW((void)read_snapshot(is), coded_error);
  }
  // Version bumps are refused rather than misparsed. The header is the
  // first line, so its " 2\n" is the first occurrence in the text.
  {
    std::string bad = text;
    bad.replace(bad.find(" 2\n"), 3, " 9\n");
    std::istringstream is(bad);
    EXPECT_THROW((void)read_snapshot(is), coded_error);
  }
  // An in-flight departed id >= n must be rejected.
  {
    std::string bad = text;
    const auto pos = bad.find("inflight-departed 1 : 1");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 23, "inflight-departed 1 : 7");
    std::istringstream is(bad);
    EXPECT_THROW((void)read_snapshot(is), coded_error);
  }
}

TEST(ServeSnapshot, NonFiniteWeightsAreUnserializable) {
  ServeSnapshot snap = sample_snapshot();
  snap.recompute.weights[1] = std::numeric_limits<double>::quiet_NaN();
  std::stringstream ss;
  try {
    write_snapshot(ss, snap);
    FAIL() << "NaN weight serialized";
  } catch (const coded_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::SnapshotFormat);
  }
}

TEST(ServeSnapshot, AtomicSaveLeavesNoTmpFile) {
  const std::string path =
      ::testing::TempDir() + "raysched_serve_snap_test.txt";
  save_snapshot_atomic(path, sample_snapshot());
  const ServeSnapshot back = load_snapshot(path);
  EXPECT_EQ(back.next_slot, 1234u);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

// ---- error taxonomy -------------------------------------------------------

TEST(ServeErrors, CodedErrorCarriesCodeAndPrefix) {
  const coded_error e(ErrorCode::PoisonedInput, "bad gains");
  EXPECT_EQ(e.code(), ErrorCode::PoisonedInput);
  EXPECT_EQ(std::string(e.what()), "[poisoned-input] bad gains");
  EXPECT_THROW(require_code(false, ErrorCode::SnapshotIo, "x"), coded_error);
  // coded_error is still a raysched::error: existing catch sites keep
  // working.
  EXPECT_THROW(require_code(false, ErrorCode::SnapshotIo, "x"),
               raysched::error);
}

TEST(ServeErrors, CodeNamesRoundTripThroughHealthAndPropagation) {
  for (HealthState s : {HealthState::Healthy, HealthState::Degraded,
                        HealthState::Overloaded, HealthState::Quarantined}) {
    EXPECT_EQ(health_state_from_string(to_string(s)), s);
  }
  for (core::Propagation p :
       {core::Propagation::NonFading, core::Propagation::Rayleigh}) {
    EXPECT_EQ(propagation_from_string(to_string(p)), p);
  }
}

}  // namespace
}  // namespace raysched::serve
