// Integration tests: end-to-end pipelines mirroring the paper's experiments
// at reduced scale.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched {
namespace {

using model::LinkId;
using model::LinkSet;
using raysched::testing::paper_network;

// Figure-1 pipeline at miniature scale: uniform transmission probability
// sweep; the Rayleigh curve must be a "smoothed" version of the non-fading
// curve — in particular both are 0 at q=0, and the Rayleigh expected
// successes stay within a constant factor of non-fading for interior q.
TEST(Integration, Figure1MiniatureSweep) {
  auto net = paper_network(30, 2024);
  const double beta = 2.5;
  util::RngStream rng(1);
  double prev_nonfading_at_0 = -1.0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> probs(net.size(), q);
    const double rayleigh = core::expected_rayleigh_successes(net, units::probabilities(probs), units::Threshold(beta));
    const double nonfading =
        core::expected_nonfading_successes_mc(net, units::probabilities(probs), units::Threshold(beta), 800, rng);
    if (q == 0.0) {
      EXPECT_DOUBLE_EQ(rayleigh, 0.0);
      EXPECT_DOUBLE_EQ(nonfading, 0.0);
      prev_nonfading_at_0 = nonfading;
      continue;
    }
    EXPECT_GT(rayleigh, 0.0);
    // Models track each other within a small constant factor (the paper's
    // "curves behave alike" observation).
    if (nonfading > 1.0) {
      EXPECT_LT(rayleigh / nonfading, 4.0) << "q=" << q;
      EXPECT_GT(rayleigh / nonfading, 0.25) << "q=" << q;
    }
  }
  (void)prev_nonfading_at_0;
}

// Full algorithm transfer pipeline: greedy in non-fading -> Lemma 2 transfer
// -> compare to the Theorem-2-simulated bound on the Rayleigh optimum.
TEST(Integration, CapacityTransferPipeline) {
  auto net = paper_network(40, 7);
  const double beta = 2.5;
  const auto greedy = algorithms::greedy_capacity(net, beta);
  ASSERT_GT(greedy.selected.size(), 0u);

  // Lemma 2: expected Rayleigh successes of the transferred solution.
  util::RngStream rng(7);
  const auto transfer = core::transfer_capacity_solution(
      net, greedy.selected, core::Utility::binary(units::Threshold(beta)), 1, rng);
  EXPECT_GE(transfer.ratio(), 1.0 / std::exp(1.0) - 1e-9);

  // The Rayleigh optimum with q in {0,1} cannot exceed n, and the
  // transferred value must be a decent fraction of the local-search OPT
  // estimate times 1/e.
  algorithms::LocalSearchOptions opts;
  opts.restarts = 3;
  const auto opt_lb = algorithms::local_search_max_feasible_set(net, beta, opts);
  EXPECT_GE(transfer.rayleigh_value * std::exp(1.0) * 2.0 + 1e-9,
            static_cast<double>(greedy.selected.size()));
  EXPECT_GE(opt_lb.selected.size(), greedy.selected.size());
}

// Latency pipeline: schedule everything in both models; the Rayleigh run
// with 4x repetition should finish within a constant factor of non-fading.
TEST(Integration, LatencyTransferPipeline) {
  auto net = paper_network(25, 9);
  const double beta = 2.5;
  util::RngStream rng_nf(1), rng_r(2);
  const auto nf = algorithms::aloha_schedule(
      net, beta, algorithms::Propagation::NonFading, rng_nf);
  const auto rl = algorithms::aloha_schedule(
      net, beta, algorithms::Propagation::Rayleigh, rng_r);
  ASSERT_TRUE(nf.completed);
  ASSERT_TRUE(rl.completed);
  // Generous statistical bound: Rayleigh latency within ~20x of non-fading
  // (theory: constant factor; these are single runs).
  EXPECT_LT(rl.slots, 20u * nf.slots + 200u);
}

// Regret-learning pipeline reaching a constant fraction of OPT (Theorem 3's
// empirical shadow at small scale).
TEST(Integration, RegretLearningReachesConstantFractionOfOpt) {
  auto net = paper_network(16, 12);
  const double beta = 2.5;
  const auto opt = algorithms::exact_max_feasible_set(net, beta, 16);
  ASSERT_GT(opt.selected.size(), 0u);

  learning::GameOptions opts;
  opts.rounds = 1200;
  opts.beta = beta;
  for (auto model : {learning::GameModel::NonFading,
                     learning::GameModel::Rayleigh}) {
    opts.model = model;
    util::RngStream rng(3);
    const auto result = learning::run_capacity_game(
        net, opts,
        [] { return std::make_unique<learning::RwmLearner>(); }, rng);
    // Average successes over the last quarter of the run.
    double late = 0.0;
    const std::size_t tail = opts.rounds / 4;
    for (std::size_t t = opts.rounds - tail; t < opts.rounds; ++t) {
      late += result.successes_per_round[t];
    }
    late /= static_cast<double>(tail);
    EXPECT_GT(late, 0.2 * static_cast<double>(opt.selected.size()))
        << "model " << static_cast<int>(model);
  }
}

// The b_k sequence and the number of simulation slots stay tiny across the
// entire practical range of n — Theorem 2's "almost constant" observation.
TEST(Integration, SimulationSlotsAlmostConstant) {
  EXPECT_LE(util::theorem2_num_levels(100) * core::kSimulationRepeatsPerLevel,
            7 * 19);
  EXPECT_EQ(util::theorem2_num_levels(100), util::theorem2_num_levels(1000));
}

// Shannon-capacity variant end to end: flexible-rate algorithm + MC transfer.
TEST(Integration, ShannonCapacityPipeline) {
  auto net = paper_network(30, 21);
  const core::Utility shannon = core::Utility::shannon();
  const auto result =
      algorithms::flexible_rate_capacity(net, shannon, 0.5, 8.0, 8);
  ASSERT_GT(result.selected.size(), 0u);
  util::RngStream rng(5);
  const auto transfer = core::transfer_capacity_solution(
      net, result.selected, shannon, 2000, rng);
  EXPECT_GT(transfer.nonfading_value, 0.0);
  EXPECT_GE(transfer.ratio(), 1.0 / std::exp(1.0) * 0.85);
}

}  // namespace
}  // namespace raysched
