// Tests for the Lemma 2 solution transfer: non-fading solutions keep at
// least a 1/e fraction of their utility under Rayleigh fading.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::core {
namespace {

using model::LinkId;
using model::LinkSet;
using raysched::testing::hand_matrix_network;
using raysched::testing::paper_network;

constexpr double kInvE = 0.36787944117144233;

TEST(Lemma2, PerLinkProbabilityAtLeastInvE) {
  // The heart of Lemma 2: success probability at the link's own non-fading
  // SINR is exactly exp(-1) when evaluated via the Lemma 1 lower bound, and
  // the exact probability dominates it.
  auto net = hand_matrix_network(0.1);
  const LinkSet sol = {0, 1, 2};
  for (LinkId i : sol) {
    const double p = per_link_transfer_probability(net, sol, i).value();
    EXPECT_GE(p, kInvE - 1e-12) << "link " << i;
    EXPECT_LE(p, 1.0);
  }
}

class Lemma2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma2Property, PerLinkBoundOnRandomInstances) {
  auto net = paper_network(25, GetParam());
  // Any active set works — Lemma 2 does not need feasibility for the
  // per-link probability bound; it needs it only for nonzero utility.
  util::RngStream rng(GetParam() ^ 0x5555);
  LinkSet active;
  for (LinkId i = 0; i < net.size(); ++i) {
    if (rng.bernoulli(0.4)) active.push_back(i);
  }
  if (active.empty()) active.push_back(0);
  for (LinkId i : active) {
    EXPECT_GE(per_link_transfer_probability(net, active, i).value(), kInvE - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Property,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Lemma2, TransferRatioForGreedySolutions) {
  // End-to-end: greedy non-fading solution, evaluated exactly in Rayleigh.
  for (std::uint64_t seed : {101, 202, 303}) {
    auto net = paper_network(40, seed);
    const double beta = 2.5;
    const auto greedy = algorithms::greedy_capacity(net, beta);
    ASSERT_FALSE(greedy.selected.empty());
    util::RngStream rng(seed);
    const auto result = transfer_capacity_solution(
        net, greedy.selected, Utility::binary(units::Threshold(beta)), 1, rng);
    EXPECT_DOUBLE_EQ(result.nonfading_value,
                     static_cast<double>(greedy.selected.size()));
    EXPECT_GE(result.ratio(), kInvE - 1e-12) << "seed " << seed;
    EXPECT_LE(result.ratio(), 1.0);
  }
}

TEST(Lemma2, ExactThresholdEvaluationMatchesClosedForm) {
  auto net = hand_matrix_network(0.1);
  const LinkSet sol = {0, 1};
  const Utility u = Utility::weighted(units::Threshold(1.5), 2.0);
  const double expected =
      2.0 * (model::success_probability_rayleigh(net, sol, 0, units::Threshold(1.5)).value() +
             model::success_probability_rayleigh(net, sol, 1, units::Threshold(1.5)).value());
  EXPECT_NEAR(expected_rayleigh_utility_exact(net, sol, u), expected, 1e-12);
}

TEST(Lemma2, ExactRejectsNonThreshold) {
  auto net = hand_matrix_network();
  EXPECT_THROW(
      expected_rayleigh_utility_exact(net, {0}, Utility::shannon()),
      raysched::error);
}

TEST(Lemma2, MonteCarloShannonTransfer) {
  // Shannon utility: the Lemma 2 guarantee holds for all valid utilities;
  // verify the MC estimate is at least 1/e of the non-fading value (with
  // slack for sampling noise).
  auto net = paper_network(20, 404, /*alpha=*/2.2, /*noise=*/0.0);
  const auto greedy = algorithms::greedy_capacity(net, 1.0);
  ASSERT_GE(greedy.selected.size(), 2u);
  util::RngStream rng(9);
  const auto result = transfer_capacity_solution(
      net, greedy.selected, Utility::shannon(), 4000, rng);
  EXPECT_GT(result.nonfading_value, 0.0);
  EXPECT_GE(result.ratio(), kInvE * 0.9);
}

TEST(Lemma2, McUtilityConvergesToExactForThresholds) {
  auto net = hand_matrix_network(0.1);
  const LinkSet sol = {0, 1, 2};
  const Utility u = Utility::binary(units::Threshold(1.0));
  util::RngStream rng(31);
  const double mc = expected_rayleigh_utility_mc(net, sol, u, 30000, rng);
  const double exact = expected_rayleigh_utility_exact(net, sol, u);
  EXPECT_NEAR(mc, exact, 0.03);
}

TEST(Lemma2, EmptySolutionHasZeroValue) {
  auto net = hand_matrix_network();
  util::RngStream rng(1);
  const auto result =
      transfer_capacity_solution(net, {}, Utility::binary(units::Threshold(1.0)), 10, rng);
  EXPECT_DOUBLE_EQ(result.nonfading_value, 0.0);
  EXPECT_DOUBLE_EQ(result.rayleigh_value, 0.0);
  EXPECT_DOUBLE_EQ(result.ratio(), 0.0);
}

TEST(Lemma2, InfiniteSinrRejected) {
  // Single link, no noise: non-fading SINR is infinite and the transfer
  // probability is ill-defined.
  auto net = hand_matrix_network(0.0);
  EXPECT_THROW(per_link_transfer_probability(net, {0}, 0), raysched::error);
}

}  // namespace
}  // namespace raysched::core
