// Tests for Algorithm 1 / Theorem 2: the O(log* n) simulation of a Rayleigh
// slot by non-fading slots.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace raysched::core {
namespace {

using model::LinkId;
using raysched::testing::paper_network;

TEST(SimulationSchedule, StructureMatchesAlgorithm1) {
  auto net = paper_network(100, 1);
  std::vector<double> q(net.size(), 0.8);
  const auto schedule = build_simulation_schedule(net, units::probabilities(q));

  // Levels must be exactly the k with b_k < n.
  EXPECT_EQ(static_cast<int>(schedule.levels.size()),
            util::theorem2_num_levels(net.size()));

  // b_k recursion and per-level probabilities q_i / (4 b_k).
  double b = 0.25;
  for (const auto& level : schedule.levels) {
    EXPECT_DOUBLE_EQ(level.b_k, b);
    EXPECT_EQ(level.repeats, kSimulationRepeatsPerLevel);
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_DOUBLE_EQ(level.probabilities[i].value(),
                       std::min(1.0, q[i] / (4.0 * b)));
    }
    b = std::exp(b / 2.0);
  }
  EXPECT_EQ(schedule.total_slots(),
            schedule.levels.size() *
                static_cast<std::size_t>(kSimulationRepeatsPerLevel));
}

TEST(SimulationSchedule, FirstLevelPreservesQ) {
  // b_0 = 1/4, so level 0 uses q_i / 1 = q_i.
  auto net = paper_network(10, 2);
  std::vector<double> q(net.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = static_cast<double>(i) / 10.0;
  }
  const auto schedule = build_simulation_schedule(net, units::probabilities(q));
  ASSERT_FALSE(schedule.levels.empty());
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_DOUBLE_EQ(schedule.levels[0].probabilities[i].value(), q[i]);
  }
}

TEST(SimulationSchedule, SlotCountIsLogStar) {
  // The whole point: even a million links need only a handful of levels.
  for (std::size_t n : {10ul, 100ul, 1000ul}) {
    auto net = paper_network(std::min<std::size_t>(n, 100), 3);
    // For large-n schedules, use a synthetic gain matrix network of size n
    // to avoid the O(n^2) geometric construction in this structural test.
    if (n > 100) {
      std::vector<double> gains(n * n, 0.0);
      for (std::size_t i = 0; i < n; ++i) gains[i * n + i] = 1.0;
      model::Network big(n, std::move(gains), units::Power(0.0));
      std::vector<double> q(n, 1.0);
      EXPECT_LE(build_simulation_schedule(big, units::probabilities(q)).levels.size(), 8u);
    } else {
      std::vector<double> q(net.size(), 1.0);
      EXPECT_LE(build_simulation_schedule(net, units::probabilities(q)).levels.size(), 8u);
    }
  }
}

TEST(SimulationSchedule, ValidatesProbabilities) {
  auto net = paper_network(5, 4);
  EXPECT_THROW(build_simulation_schedule(net, units::probabilities({0.5, 0.5})),
               raysched::error);
  EXPECT_THROW(build_simulation_schedule(
                   net, units::probabilities({0.5, 0.5, 0.5, 0.5, 1.5})),
               raysched::error);
}

TEST(Lemma3, SimulationDominatesRayleighSuccess) {
  // Pr[max_t gamma^{nf,t} >= beta] >= Q_i(q, beta) for beta <= S(i,i)/(2 nu).
  // Statistical check on small random instances, for several links.
  for (std::uint64_t seed : {10, 20, 30}) {
    auto net = paper_network(15, seed);
    util::RngStream qrng(seed ^ 0xF00);
    std::vector<double> q(net.size());
    for (auto& v : q) v = qrng.uniform();
    const double beta = 2.5;
    const auto schedule = build_simulation_schedule(net, units::probabilities(q));
    util::RngStream rng(seed);
    for (LinkId i = 0; i < 3; ++i) {
      // Condition of Lemma 3: beta <= S(i,i) / (2 nu). Holds easily with
      // noise 4e-7 in the paper geometry.
      ASSERT_LE(beta, net.signal(i) / (2.0 * net.noise()));
      const double rayleigh =
          rayleigh_success_probability(net, units::probabilities(q), i, units::Threshold(beta)).value();
      const double sim_prob =
          simulation_success_probability_mc(net, schedule, i,
                                            units::Threshold(beta), 4000, rng)
              .value();
      // Allow 3-sigma MC slack.
      const double sigma = std::sqrt(0.25 / 4000.0);
      EXPECT_GE(sim_prob + 3.0 * sigma, rayleigh)
          << "seed " << seed << " link " << i;
    }
  }
}

TEST(Theorem2, BestUtilityWithinLogStarFactor) {
  // E[sum u(max_t gamma^{nf,t})] >= (1/8) E[sum u(gamma^R)] per the proof;
  // check the weaker statistical statement that the simulated utility is a
  // substantial fraction of the Rayleigh expected utility.
  auto net = paper_network(20, 42);
  std::vector<double> q(net.size(), 1.0);
  const double beta = 2.5;
  const Utility u = Utility::binary(units::Threshold(beta));
  const auto schedule = build_simulation_schedule(net, units::probabilities(q));
  util::RngStream rng(7);
  const double simulated =
      simulation_expected_best_utility_mc(net, schedule, u, 300, rng);
  const double rayleigh = expected_rayleigh_successes(net, units::probabilities(q), units::Threshold(beta));
  EXPECT_GE(simulated * 8.0 * 1.1, rayleigh);  // 8x from the proof + slack
}

TEST(Theorem2, PerSlotUtilitiesExposeBestStep) {
  auto net = paper_network(12, 5);
  std::vector<double> q(net.size(), 1.0);
  const auto schedule = build_simulation_schedule(net, units::probabilities(q));
  util::RngStream rng(3);
  const auto per_slot = simulation_per_slot_utility_mc(
      net, schedule, Utility::binary(units::Threshold(2.5)), 200, rng);
  EXPECT_EQ(per_slot.size(), schedule.total_slots());
  for (double v : per_slot) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, static_cast<double>(net.size()));
  }
}

}  // namespace
}  // namespace raysched::core
