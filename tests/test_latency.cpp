// Tests for latency minimization (repeated capacity + ALOHA) and multi-hop.
#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.hpp"

namespace raysched::algorithms {
namespace {

using model::LinkId;
using model::LinkSet;
using raysched::testing::paper_network;

TEST(RepeatedCapacity, NonFadingCompletesAndCoversEveryLink) {
  auto net = paper_network(30, 1);
  util::RngStream rng(1);
  const auto result = repeated_capacity_schedule(net, 2.5,
                                                 Propagation::NonFading, rng);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.schedule.size(), result.slots);
  // Every link appears in some slot and first_success_slot is consistent.
  std::vector<bool> seen(net.size(), false);
  for (const auto& slot : result.schedule) {
    for (LinkId i : slot) seen[i] = true;
  }
  for (LinkId i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "link " << i;
    EXPECT_LT(result.first_success_slot[i], result.slots);
  }
}

TEST(RepeatedCapacity, NonFadingSlotsAreFeasible) {
  auto net = paper_network(25, 2);
  util::RngStream rng(2);
  const auto result = repeated_capacity_schedule(net, 2.5,
                                                 Propagation::NonFading, rng);
  for (const auto& slot : result.schedule) {
    EXPECT_TRUE(model::is_feasible(net, slot, units::Threshold(2.5)));
  }
}

TEST(RepeatedCapacity, NonFadingLatencyIsDeterministic) {
  auto net = paper_network(20, 3);
  util::RngStream r1(5), r2(99);
  const auto a = repeated_capacity_schedule(net, 2.5, Propagation::NonFading, r1);
  const auto b = repeated_capacity_schedule(net, 2.5, Propagation::NonFading, r2);
  EXPECT_EQ(a.slots, b.slots);  // rng unused in the non-fading variant
}

TEST(RepeatedCapacity, RayleighCompletesWithRetries) {
  auto net = paper_network(20, 4);
  util::RngStream rng(4);
  const auto result = repeated_capacity_schedule(net, 2.5,
                                                 Propagation::Rayleigh, rng);
  EXPECT_TRUE(result.completed);
  // Rayleigh needs at least as many slots as the non-fading run (failures
  // re-enter the pool) — statistically certain at these sizes.
  util::RngStream rng2(4);
  const auto nf = repeated_capacity_schedule(net, 2.5,
                                             Propagation::NonFading, rng2);
  EXPECT_GE(result.slots, nf.slots);
}

TEST(RepeatedCapacity, CustomAlgorithmIsUsed) {
  auto net = paper_network(10, 5);
  util::RngStream rng(5);
  // One link per slot: latency equals n.
  const auto result = repeated_capacity_schedule(
      net, 2.5, Propagation::NonFading, rng, 100000,
      [](const model::Network&, double, const LinkSet& remaining) {
        return LinkSet{remaining.front()};
      });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.slots, net.size());
}

TEST(RepeatedCapacity, MaxSlotsRespected) {
  auto net = paper_network(20, 6);
  util::RngStream rng(6);
  const auto result =
      repeated_capacity_schedule(net, 2.5, Propagation::Rayleigh, rng, 2);
  EXPECT_LE(result.slots, 2u);
  if (!result.completed) {
    EXPECT_EQ(result.slots, 2u);
  }
}

TEST(Aloha, CompletesInBothModels) {
  auto net = paper_network(15, 7);
  for (auto prop : {Propagation::NonFading, Propagation::Rayleigh}) {
    util::RngStream rng(7);
    const auto result = aloha_schedule(net, 2.5, prop, rng);
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.slots, 0u);
  }
}

TEST(Aloha, RayleighStepUsesFourRepeats) {
  // With max_slots = 4 and Rayleigh, exactly one randomized step runs and is
  // repeated up to 4 times: schedule length <= 4 and all entries equal.
  auto net = paper_network(10, 8);
  util::RngStream rng(8);
  const auto result =
      aloha_schedule(net, 2.5, Propagation::Rayleigh, rng, {}, 4);
  ASSERT_LE(result.schedule.size(), 4u);
  for (std::size_t k = 1; k < result.schedule.size(); ++k) {
    EXPECT_EQ(result.schedule[k], result.schedule[0]);
  }
}

TEST(Aloha, AdaptiveCompletesToo) {
  auto net = paper_network(15, 9);
  AlohaOptions opts;
  opts.adaptive = true;
  util::RngStream rng(9);
  const auto result =
      aloha_schedule(net, 2.5, Propagation::NonFading, rng, opts);
  EXPECT_TRUE(result.completed);
}

TEST(Aloha, ValidatesOptions) {
  auto net = paper_network(5, 10);
  util::RngStream rng(1);
  AlohaOptions bad;
  bad.initial_probability = 0.9;  // > 1/2 breaks the Section-4 hypothesis
  EXPECT_THROW(aloha_schedule(net, 2.5, Propagation::NonFading, rng, bad),
               raysched::error);
  AlohaOptions bad2;
  bad2.min_probability = 0.5;
  bad2.initial_probability = 0.25;
  EXPECT_THROW(aloha_schedule(net, 2.5, Propagation::NonFading, rng, bad2),
               raysched::error);
}

TEST(Aloha, DenseInstanceStillCompletes) {
  // Heavy interference: two co-located clusters.
  util::RngStream gen(11);
  auto links = model::two_cluster_links(5, 5.0, 500.0, 2.0, gen);
  model::Network net(std::move(links), model::PowerAssignment::uniform(1.0),
                     3.0, units::Power(1e-9));
  util::RngStream rng(11);
  const auto result = aloha_schedule(net, 1.5, Propagation::Rayleigh, rng, {},
                                     500000);
  EXPECT_TRUE(result.completed);
}

TEST(Multihop, ChainCompletesInOrder) {
  auto links = model::chain_links(5, 10.0);
  model::Network net(std::move(links), model::PowerAssignment::uniform(1.0),
                     2.0, units::Power(1e-6));
  std::vector<MultihopRequest> requests = {{{0, 1, 2, 3, 4}}};
  util::RngStream rng(12);
  const auto result =
      schedule_multihop(net, requests, 2.0, Propagation::NonFading, rng);
  EXPECT_TRUE(result.completed);
  // 5 hops, each needs at least one slot.
  EXPECT_GE(result.slots, 5u);
}

TEST(Multihop, ParallelRequestsShareSlots) {
  auto net = paper_network(20, 13);
  std::vector<MultihopRequest> requests;
  for (LinkId i = 0; i < 20; i += 2) {
    requests.push_back({{i, i + 1}});
  }
  util::RngStream rng(13);
  const auto result =
      schedule_multihop(net, requests, 2.5, Propagation::NonFading, rng);
  EXPECT_TRUE(result.completed);
  for (std::size_t q = 0; q < requests.size(); ++q) {
    EXPECT_LT(result.completion_slot[q], result.slots);
  }
}

TEST(Multihop, RayleighCompletes) {
  auto links = model::chain_links(4, 10.0);
  model::Network net(std::move(links), model::PowerAssignment::uniform(1.0),
                     2.0, units::Power(1e-6));
  std::vector<MultihopRequest> requests = {{{0, 1, 2, 3}}, {{2, 3}}};
  util::RngStream rng(14);
  const auto result =
      schedule_multihop(net, requests, 1.5, Propagation::Rayleigh, rng);
  EXPECT_TRUE(result.completed);
}

TEST(Multihop, ValidatesRequests) {
  auto net = paper_network(5, 15);
  util::RngStream rng(1);
  EXPECT_THROW(
      schedule_multihop(net, {}, 2.0, Propagation::NonFading, rng),
      raysched::error);
  EXPECT_THROW(schedule_multihop(net, {{{}}}, 2.0, Propagation::NonFading, rng),
               raysched::error);
  EXPECT_THROW(
      schedule_multihop(net, {{{99}}}, 2.0, Propagation::NonFading, rng),
      raysched::error);
}

}  // namespace
}  // namespace raysched::algorithms
