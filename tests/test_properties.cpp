// Cross-cutting property sweeps (parameterized): the library's central
// invariants checked over a grid of instance families, thresholds, power
// schemes, and noise regimes.
#include <gtest/gtest.h>

#include <cmath>
#include <ostream>

#include "test_helpers.hpp"

namespace raysched {
namespace {

using model::LinkId;
using model::LinkSet;

// ---------------------------------------------------------------------------
// Instance grid.
// ---------------------------------------------------------------------------

enum class PowerScheme { Uniform, SquareRoot, Linear };

struct InstanceCase {
  std::uint64_t seed;
  std::size_t n;
  double beta;
  double alpha;
  double noise;
  PowerScheme scheme;

  friend void PrintTo(const InstanceCase& c, std::ostream* os) {
    const char* s = c.scheme == PowerScheme::Uniform      ? "uni"
                    : c.scheme == PowerScheme::SquareRoot ? "sqrt"
                                                          : "lin";
    *os << "seed" << c.seed << "_n" << c.n << "_beta" << c.beta << "_alpha"
        << c.alpha << "_nu" << c.noise << "_" << s;
  }
};

model::Network make_instance(const InstanceCase& c) {
  util::RngStream rng(c.seed);
  model::RandomPlaneParams params;
  params.num_links = c.n;
  auto links = model::random_plane_links(params, rng);
  model::PowerAssignment power =
      c.scheme == PowerScheme::Uniform
          ? model::PowerAssignment::uniform(2.0)
          : c.scheme == PowerScheme::SquareRoot
                ? model::PowerAssignment::square_root(2.0)
                : model::PowerAssignment::linear(2.0);
  return model::Network(std::move(links), power, c.alpha, units::Power(c.noise));
}

const InstanceCase kGrid[] = {
    {1, 20, 2.5, 2.2, 4e-7, PowerScheme::Uniform},
    {2, 20, 2.5, 2.2, 4e-7, PowerScheme::SquareRoot},
    {3, 20, 2.5, 2.2, 4e-7, PowerScheme::Linear},
    {4, 35, 0.5, 2.1, 0.0, PowerScheme::Uniform},
    {5, 35, 0.5, 2.1, 0.0, PowerScheme::SquareRoot},
    {6, 15, 8.0, 3.0, 1e-6, PowerScheme::Uniform},
    {7, 15, 8.0, 3.0, 1e-6, PowerScheme::Linear},
    {8, 40, 1.0, 2.5, 1e-4, PowerScheme::Uniform},
    {9, 40, 1.0, 2.5, 1e-4, PowerScheme::SquareRoot},
    {10, 25, 4.0, 2.0, 1e-5, PowerScheme::Linear},
};

// ---------------------------------------------------------------------------
// P-suite 1: every capacity algorithm returns a certified-feasible set, and
// the affectance predicate agrees with direct SINR feasibility on it.
// ---------------------------------------------------------------------------

class CapacityInvariants : public ::testing::TestWithParam<InstanceCase> {};

TEST_P(CapacityInvariants, GreedyFeasibleAndAffectanceConsistent) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  const auto result = algorithms::greedy_capacity(net, c.beta);
  EXPECT_TRUE(model::is_feasible(net, result.selected, units::Threshold(c.beta)));
  for (LinkId i : result.selected) {
    EXPECT_LE(
        model::total_affectance_on_raw(net, result.selected, i, units::Threshold(c.beta)),
        1.0 + 1e-9);
  }
}

TEST_P(CapacityInvariants, PowerControlCertifiedWhenNonEmpty) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  const auto result = algorithms::power_control_capacity(net, c.beta);
  if (result.selected.empty()) return;
  model::Network powered = net;
  powered.set_powers(*result.powers);
  EXPECT_TRUE(model::is_feasible(powered, result.selected, units::Threshold(c.beta)));
  // Spectral certificate agrees.
  EXPECT_TRUE(model::power_controlled_feasible(net, result.selected, units::Threshold(c.beta)));
}

TEST_P(CapacityInvariants, LocalSearchDominatesGreedy) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  algorithms::LocalSearchOptions opts;
  opts.restarts = 2;
  const auto ls = algorithms::local_search_max_feasible_set(net, c.beta, opts);
  const auto greedy = algorithms::greedy_capacity(net, c.beta);
  EXPECT_GE(ls.selected.size(), greedy.selected.size());
  EXPECT_TRUE(model::is_feasible(net, ls.selected, units::Threshold(c.beta)));
}

INSTANTIATE_TEST_SUITE_P(Grid, CapacityInvariants, ::testing::ValuesIn(kGrid));

// ---------------------------------------------------------------------------
// P-suite 2: the Rayleigh laws — Theorem 1 consistency, Lemma 1 sandwich,
// Lemma 2 floor — on every grid instance.
// ---------------------------------------------------------------------------

class RayleighLaws : public ::testing::TestWithParam<InstanceCase> {};

TEST_P(RayleighLaws, Lemma1SandwichEverywhere) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  util::RngStream rng(c.seed ^ 0xBEEF);
  std::vector<double> q(net.size());
  for (auto& v : q) v = rng.uniform();
  for (LinkId i = 0; i < net.size(); ++i) {
    const double exact = core::rayleigh_success_probability(net, units::probabilities(q), i, units::Threshold(c.beta)).value();
    EXPECT_LE(core::rayleigh_success_lower_bound(net, units::probabilities(q), i, units::Threshold(c.beta)).value(),
              exact * (1 + 1e-12) + 1e-300);
    EXPECT_GE(core::rayleigh_success_upper_bound(net, units::probabilities(q), i, units::Threshold(c.beta)).value() *
                      (1 + 1e-12) + 1e-300,
              exact);
  }
}

TEST_P(RayleighLaws, Lemma2FloorOnGreedySolution) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  const auto greedy = algorithms::greedy_capacity(net, c.beta);
  for (LinkId i : greedy.selected) {
    EXPECT_GE(model::success_probability_rayleigh(net, greedy.selected, i,
                                                  units::Threshold(c.beta)).value(),
              1.0 / std::exp(1.0) - 1e-12);
  }
}

TEST_P(RayleighLaws, SlotExpectationEqualsSumOfTheorem1AtBinaryQ) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  const auto greedy = algorithms::greedy_capacity(net, c.beta);
  if (greedy.selected.empty()) return;
  std::vector<double> q(net.size(), 0.0);
  for (LinkId i : greedy.selected) q[i] = 1.0;
  EXPECT_NEAR(
      core::expected_rayleigh_successes(net, units::probabilities(q), units::Threshold(c.beta)),
      model::expected_successes_rayleigh(net, greedy.selected, units::Threshold(c.beta)), 1e-9);
}

TEST_P(RayleighLaws, MonotoneInBeta) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  std::vector<double> q(net.size(), 0.7);
  double prev = std::numeric_limits<double>::infinity();
  for (double beta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double e = core::expected_rayleigh_successes(net, units::probabilities(q), units::Threshold(beta));
    EXPECT_LE(e, prev * (1 + 1e-12));
    prev = e;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RayleighLaws, ::testing::ValuesIn(kGrid));

// ---------------------------------------------------------------------------
// P-suite 3: latency invariants across the grid.
// ---------------------------------------------------------------------------

class LatencyInvariants : public ::testing::TestWithParam<InstanceCase> {};

TEST_P(LatencyInvariants, RepeatedCapacityServesEveryoneNonFading) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  // Skip noise regimes where some link cannot reach beta even alone.
  for (LinkId i = 0; i < net.size(); ++i) {
    if (net.noise() > 0.0 && net.signal(i) / c.beta <= net.noise()) {
      GTEST_SKIP() << "noise-dominated instance";
    }
  }
  util::RngStream rng(c.seed);
  const auto result = algorithms::repeated_capacity_schedule(
      net, c.beta, algorithms::Propagation::NonFading, rng);
  ASSERT_TRUE(result.completed);
  std::vector<bool> served(net.size(), false);
  for (std::size_t s = 0; s < result.schedule.size(); ++s) {
    EXPECT_TRUE(model::is_feasible(net, result.schedule[s], units::Threshold(c.beta)));
    for (LinkId i : result.schedule[s]) served[i] = true;
  }
  for (LinkId i = 0; i < net.size(); ++i) EXPECT_TRUE(served[i]);
}

TEST_P(LatencyInvariants, FirstSuccessSlotWithinBounds) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  util::RngStream rng(c.seed ^ 0xFACE);
  const auto result = algorithms::aloha_schedule(
      net, c.beta, algorithms::Propagation::Rayleigh, rng, {}, 300000);
  if (!result.completed) GTEST_SKIP() << "did not complete in cap";
  for (LinkId i = 0; i < net.size(); ++i) {
    EXPECT_LT(result.first_success_slot[i], result.slots);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LatencyInvariants,
                         ::testing::ValuesIn(kGrid));

// ---------------------------------------------------------------------------
// P-suite 4: Theorem 2 schedule structure scales with n only through
// log*(n), never with geometry.
// ---------------------------------------------------------------------------

class SimulationStructure : public ::testing::TestWithParam<InstanceCase> {};

TEST_P(SimulationStructure, LevelsMatchLogStarAndProbabilitiesScale) {
  const auto c = GetParam();
  const auto net = make_instance(c);
  util::RngStream rng(c.seed ^ 0xABC);
  std::vector<double> q(net.size());
  for (auto& v : q) v = rng.uniform();
  const auto schedule = core::build_simulation_schedule(net, units::probabilities(q));
  EXPECT_EQ(static_cast<int>(schedule.levels.size()),
            util::theorem2_num_levels(net.size()));
  for (const auto& level : schedule.levels) {
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_LE(level.probabilities[i].value(), q[i] + 1e-15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SimulationStructure,
                         ::testing::ValuesIn(kGrid));

}  // namespace
}  // namespace raysched
