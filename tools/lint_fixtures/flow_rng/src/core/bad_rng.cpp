// Seeded violation: raw <random> engine in library code (RS-D1).
#include <random>

namespace raysched::core {

double noisy_gain(double base) {
  std::mt19937 engine(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return base + dist(engine);
}

}  // namespace raysched::core
