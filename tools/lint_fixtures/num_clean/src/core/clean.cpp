// Fixture: the guarded idioms the analyzer must accept without findings —
// contract-guarded division and domain calls, util::fp sentinels for exact
// comparisons, and a log1p companion for the loop-carried product.
#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/fp.hpp"

double safe_ratio(double num, double den) {
  RAYSCHED_EXPECT(den > 0.0, "fixture: denominator must be positive");
  return num / den;
}

double safe_log(double x) {
  RAYSCHED_EXPECT(x > 0.0, "fixture: log argument must be positive");
  return std::log(x);
}

double sentinel_skip(double q) {
  if (raysched::util::fp::exact_zero(q)) return 1.0;
  return q;
}

double all_idle_probability_log(const std::vector<double>& q) {
  double lp = 0.0;
  for (unsigned long i = 0; i < q.size(); ++i) {
    lp += std::log1p(-q[i]);
  }
  RAYSCHED_EXPECT(lp <= 0.0, "fixture: sum of log probabilities");
  return std::exp(lp);
}
