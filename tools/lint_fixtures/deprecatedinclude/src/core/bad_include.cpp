// Fixture: seeded RS-L10 violation — includes the deprecated RNG shim
// path instead of its real home, util/rng.hpp.
#include "sim/rng.hpp"

namespace raysched::core {
int bad_include() { return 0; }
}  // namespace raysched::core
