// Fixture: seeded RS-L10 violation — includes the deleted RNG shim path
// (sim/rng.hpp no longer exists) instead of its real home, util/rng.hpp.
#include "sim/rng.hpp"

namespace raysched::core {
int bad_include() { return 0; }
}  // namespace raysched::core
