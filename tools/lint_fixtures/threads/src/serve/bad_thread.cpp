// Seeded violation: raw std::thread in the serve layer, outside the pool
// (RS-L2).
#include <thread>

namespace raysched::serve {
void fire_and_forget() {
  std::thread t([] {});
  t.join();
}
}  // namespace raysched::serve
