// Seeded violation: raw std::mutex / std::lock_guard outside
// src/util/sync.hpp (RS-L2) — invisible to the thread-safety analysis.
#include <mutex>

namespace raysched::serve {

int counter_value() {
  static std::mutex mu;
  static int counter = 0;
  std::lock_guard<std::mutex> lock(mu);
  return ++counter;
}

}  // namespace raysched::serve
