// Seeded violation: raw std::thread outside the pool (RS-L2).
#include <thread>

namespace raysched::core {
void fire_and_forget() {
  std::thread t([] {});
  t.join();
}
}  // namespace raysched::core
