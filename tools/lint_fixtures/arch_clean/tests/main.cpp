// Fixture TU: reaches every header, with direct includes for every layer
// it names.
#include "sim/runner.hpp"

int main() { return raysched::sim::runner(); }
