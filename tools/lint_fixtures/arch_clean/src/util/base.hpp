// Fixture: clean mini-repo — layer-ordered includes, no cycles, no
// orphans, no transitive reliance.
#pragma once

namespace raysched::util {
inline int base() { return 3; }
}  // namespace raysched::util
