// Fixture: model layer including downward (util) only — allowed.
#pragma once

#include "util/base.hpp"

namespace raysched::model {
inline int gains() { return util::base() + 1; }
}  // namespace raysched::model
