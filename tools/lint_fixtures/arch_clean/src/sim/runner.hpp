// Fixture: sim layer including downward (model, util) — allowed.
#pragma once

#include "model/gains.hpp"
#include "util/base.hpp"

namespace raysched::sim {
inline int runner() { return model::gains() + util::base(); }
}  // namespace raysched::sim
