// Fixture: a loop-carried probability product over a link-indexed loop
// with no std::log1p fallback anywhere in the TU must fire RS-N4.
#include <vector>

double all_idle_probability(const std::vector<double>& q) {
  double p = 1.0;
  for (unsigned long i = 0; i < q.size(); ++i) {
    p *= 1.0 - q[i];
  }
  return p;
}
