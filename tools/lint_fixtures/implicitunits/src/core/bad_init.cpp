// Seeded violation: brace-initializing a unit strong type (RS-L9). The
// paren constructor or a checked()/clamped()/from_db factory is the only
// sanctioned way to move a raw double into the unit layer.
#include "util/units.hpp"

namespace raysched::core {

units::Probability half_probability() {
  return units::Probability{0.5};
}

units::Threshold default_beta() {
  return units::Threshold{2.5};
}

}  // namespace raysched::core
