// Seeded RS-M5 violation: array-of-structs member chasing in a hot loop.
namespace raysched::core {

struct Link {
  double gain;
  double weight;
};

// raysched:hot
void sum_gains(const Link* links, int n, double& total) {
  for (int i = 0; i < n; ++i) {
    total += links[i].gain;  // RS-M5: strides sizeof(Link) per element
  }
}

}  // namespace raysched::core
