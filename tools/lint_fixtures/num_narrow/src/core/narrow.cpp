// Fixture: float narrowing inside a math layer must fire RS-N5.
double lossy_scale(double x) {
  const float half = 0.5f;
  return x * half;
}
