// Fixture TU: includes used.hpp only; orphan.hpp stays unreachable.
#include "util/used.hpp"

int main() { return raysched::util::used(); }
