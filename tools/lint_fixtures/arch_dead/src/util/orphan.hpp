// Fixture: seeded RS-A3 violation — no TU reaches this header.
#pragma once

namespace raysched::util {
inline int orphan() { return 0; }
}  // namespace raysched::util
