// Fixture: a header that IS reachable from the TU.
#pragma once

namespace raysched::util {
inline int used() { return 0; }
}  // namespace raysched::util
