// A well-behaved TU: suppression demo rides along ordinary code.
#include "util/good.hpp"

namespace raysched::util {
int sum_upto(int n) {
  int total = 0;
  for (int v : iota_upto(n)) total += v;
  return total;
}
}  // namespace raysched::util
