// A well-behaved header: #pragma once, self-sufficient, silent.
#pragma once

#include <vector>

namespace raysched::util {
inline std::vector<int> iota_upto(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}
}  // namespace raysched::util
