// Seeded violation: raw double parameters with unit-bearing names in a
// public core header (RS-L7). These should cross the API as
// units::Probability / units::Threshold / units::Decibel.
#pragma once

namespace raysched::core {

double success_estimate(double q, double beta);

double combine_gain(double gain, double offset_db);

}  // namespace raysched::core
