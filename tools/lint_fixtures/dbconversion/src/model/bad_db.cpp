// Seeded violation: hand-rolled dB -> linear conversion outside
// src/util/units.hpp (RS-L8). The sanctioned spelling is
// units::to_linear(units::Decibel(x)).
#include <cmath>

namespace raysched::model {

double db_to_linear_by_hand(double x_db_value) {
  return std::pow(10.0, x_db_value / 10.0);
}

}  // namespace raysched::model
