// Seeded violation: uses std::vector without including <vector> (RS-L5).
#pragma once

namespace raysched::util {
inline std::vector<int> make_empty() { return {}; }
}  // namespace raysched::util
