// Seeded violation: stdout write from library code (RS-L3).
#include <iostream>

namespace raysched::core {
void chatty() { std::cout << "library code must stay silent\n"; }
}  // namespace raysched::core
