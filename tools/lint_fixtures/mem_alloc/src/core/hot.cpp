// Seeded RS-M1 violations: heap allocation inside a hot region.
#include <vector>

namespace raysched::core {

// raysched:hot
void evaluate(int n, double& total) {
  std::vector<double> tmp(n, 0.0);  // RS-M1: sized construction per call
  double* p = new double[n];        // RS-M1: raw operator new
  for (int i = 0; i < n; ++i) tmp[i] = i * 0.5;
  for (int i = 0; i < n; ++i) total += tmp[i] + p[i];
  delete[] p;
}

}  // namespace raysched::core
