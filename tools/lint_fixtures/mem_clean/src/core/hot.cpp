// A hot region that follows the memory discipline, plus a cold function
// whose allocations are legitimately outside any region.
#include <vector>

namespace raysched::core {

class Evaluator {
 public:
  // raysched:hot
  void evaluate(int n, std::vector<double>& out) {
    out.assign(n, 0.0);  // out-parameter: the caller owns the capacity
    sums_scratch_.resize(n);  // scratch buffer: fixed capacity after warm-up
    for (int i = 0; i < n; ++i) {
      std::vector<double>& sums = sums_scratch_;
      sums[i] = i * 0.5;
      out[i] = sums[i];
    }
  }

 private:
  std::vector<double> sums_scratch_;
};

void cold_setup(int n, std::vector<double>& out) {
  std::vector<double> tmp(n, 1.0);  // outside any hot region: fine
  out = tmp;
}

}  // namespace raysched::core
