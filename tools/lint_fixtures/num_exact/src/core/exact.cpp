// Fixture: a raw exact float comparison outside util::fp must fire RS-N1.
double snap_to_grid(double x) {
  if (x == 0.25) return 0.0;
  return x;
}
