// Seeded RS-M6 violation: std::function dispatch in a hot region.
#include <functional>

namespace raysched::core {

// raysched:hot
void apply(int n, const std::function<double(int)>& f, double& total) {
  for (int i = 0; i < n; ++i) total += f(i);
}

}  // namespace raysched::core
