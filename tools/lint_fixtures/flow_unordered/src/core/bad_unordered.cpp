// Seeded violation: iterating an unordered container directly into a
// floating-point accumulation (RS-D5) — the sum depends on hash order.
#include <string>
#include <unordered_map>

namespace raysched::core {

double total_gain(const std::unordered_map<std::string, double>& gains_by_id) {
  double sum = 0.0;
  for (const auto& entry : gains_by_id) {
    sum += entry.second;
  }
  return sum;
}

}  // namespace raysched::core
