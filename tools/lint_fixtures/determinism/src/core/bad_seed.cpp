// Seeded violation: platform RNG in library code (RS-L1).
#include <random>

namespace raysched::core {
unsigned draw_platform_entropy() {
  std::random_device rd;
  return rd();
}
}  // namespace raysched::core
