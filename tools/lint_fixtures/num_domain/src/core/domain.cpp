// Fixture: std::log on an unvalidated argument must fire RS-N3.
#include <cmath>

double entropy_term(double p) {
  return -p * std::log(p);
}
