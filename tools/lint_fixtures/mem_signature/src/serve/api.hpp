// Seeded RS-M2 violation: heavy type crossing a serve signature by value.
#pragma once

#include <vector>

namespace raysched::serve {

void ingest(std::vector<double> weights);  // RS-M2: copies per call

}  // namespace raysched::serve
