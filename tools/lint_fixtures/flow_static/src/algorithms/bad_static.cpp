// Seeded violation: function-local mutable static in library code
// (RS-D4) — hidden cross-call state that breaks replay.

namespace raysched::algorithms {

int next_ticket() {
  static int counter = 0;
  return ++counter;
}

}  // namespace raysched::algorithms
