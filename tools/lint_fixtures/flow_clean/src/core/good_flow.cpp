// Clean fixture: deterministic library code that raysched_flow must pass.
// Accumulation runs over an index-ordered vector; no entropy, no clocks,
// no hidden statics.
#include <cstddef>
#include <vector>

namespace raysched::core {

double total_gain(const std::vector<double>& gains) {
  double sum = 0.0;
  for (std::size_t i = 0; i < gains.size(); ++i) {
    sum += gains[i];
  }
  return sum;
}

}  // namespace raysched::core
