// Seeded violation: result-bearing wall-clock read in library code
// (RS-D2) — this file is not on the CLOCK_WHITELIST.
#include <chrono>

namespace raysched::core {

double jittered_weight(double base) {
  const auto now = std::chrono::steady_clock::now();
  return base + static_cast<double>(now.time_since_epoch().count() % 7);
}

}  // namespace raysched::core
