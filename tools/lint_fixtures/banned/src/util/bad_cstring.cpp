// Seeded violation: overflow-prone C string call (RS-L6).
#include <cstring>

namespace raysched::util {
void copy_unchecked(char* dst, const char* src) { strcpy(dst, src); }
}  // namespace raysched::util
