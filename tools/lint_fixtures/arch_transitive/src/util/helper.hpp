// Fixture: the util-layer symbol the violator relies on transitively.
#pragma once

namespace raysched::util {
inline int helper() { return 7; }
}  // namespace raysched::util
