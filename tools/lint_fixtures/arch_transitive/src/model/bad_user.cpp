// Fixture: seeded RS-A4 violation — names util::helper but only includes
// model/wrapper.hpp, relying on its transitive include of util/helper.hpp.
#include "model/wrapper.hpp"

namespace raysched::model {
int bad_user() { return util::helper() + wrapper(); }
}  // namespace raysched::model
