// Fixture: re-exports util/helper.hpp, enabling the transitive reliance.
#pragma once

#include "util/helper.hpp"

namespace raysched::model {
inline int wrapper() { return 0; }
}  // namespace raysched::model
