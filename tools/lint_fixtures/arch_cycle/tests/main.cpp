// Fixture TU: keeps the cyclic headers reachable so only RS-A2 fires.
#include "util/a.hpp"

int main() { return raysched::util::a_value(); }
