// Fixture: seeded RS-A2 violation — a.hpp and b.hpp include each other.
#pragma once

#include "util/b.hpp"

namespace raysched::util {
inline int a_value() { return 1; }
}  // namespace raysched::util
