// Fixture: the other half of the seeded include cycle.
#pragma once

#include "util/a.hpp"

namespace raysched::util {
inline int b_value() { return 2; }
}  // namespace raysched::util
