// Seeded violation: include guards instead of #pragma once (RS-L4).
#ifndef RAYSCHED_BAD_GUARD_HPP
#define RAYSCHED_BAD_GUARD_HPP

namespace raysched::util {
inline int answer() { return 42; }
}  // namespace raysched::util

#endif  // RAYSCHED_BAD_GUARD_HPP
