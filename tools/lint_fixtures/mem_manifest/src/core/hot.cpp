// Seeded RS-M0 violations: the manifest and the annotations disagree in
// both directions (an entry with no annotation, an annotation unlisted).
namespace raysched::core {

// raysched:hot
void present(int n, double& total) {
  for (int i = 0; i < n; ++i) total += i;
}

}  // namespace raysched::core
