// Fixture TU: keeps both headers reachable so only RS-A1 fires.
#include "model/bad_model.hpp"

int main() { return raysched::model::bad_model(); }
