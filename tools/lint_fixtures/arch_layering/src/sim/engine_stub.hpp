// Fixture: a sim-layer header a lower layer must never include.
#pragma once

namespace raysched::sim {
inline int run_everything() { return 0; }
}  // namespace raysched::sim
