// Fixture: seeded RS-A1 violation — model (layer 1) includes sim (layer 5).
#pragma once

#include "sim/engine_stub.hpp"

namespace raysched::model {
inline int bad_model() { return 1; }
}  // namespace raysched::model
