// Seeded RS-M3 violation: growth loop with no reserve.
#include <vector>

namespace raysched::core {

// raysched:hot
void collect(int n, std::vector<int>& sink) {
  std::vector<int> items;
  for (int i = 0; i < n; ++i) {
    items.push_back(i);  // RS-M3: reallocates log(n) times
  }
  sink.swap(items);
}

}  // namespace raysched::core
