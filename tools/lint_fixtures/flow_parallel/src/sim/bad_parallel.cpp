// Seeded violation: a parallel_for body accumulating into shared state
// captured by reference, with no synchronized publish (RS-D3).
#include <cstddef>

namespace raysched::sim {

struct Pool {
  void submit(int) {}
};

template <typename Body>
void parallel_for(Pool&, std::size_t, const Body&) {}

double racy_total(Pool& pool, std::size_t n) {
  double total = 0.0;
  parallel_for(pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      total += static_cast<double>(i);
    }
  });
  return total;
}

}  // namespace raysched::sim
