// Fixture: a division with no visible nonzero guard must fire RS-N2.
double ratio(double num, double den) {
  return num / den;
}
