// Seeded RS-M4 violation: materializing a callee's returned container.
#include <vector>

namespace raysched::core {

std::vector<double> make_row(int n);

// raysched:hot
void consume(int n, double& total) {
  std::vector<double> row = make_row(n);  // RS-M4: fresh vector per call
  for (double v : row) total += v;
}

}  // namespace raysched::core
