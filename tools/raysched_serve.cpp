// raysched_serve: the fault-tolerant heavy-traffic serving loop as a
// long-running binary.
//
// Pumps stochastic traffic through the max-weight scheduler on a
// random-plane instance while links churn, under an optional scripted fault
// schedule (see serve/fault_script.hpp), taking periodic crash-safe
// snapshots. Restarting with --restore resumes from the last snapshot and
// replays bit-identically.
//
// Exit codes:
//   0  run completed
//   2  stopped at a scripted crash fault (restart with --restore)
//   5  conservation violated: an unexplained drop (a bug, never expected)
//   1  configuration or runtime error
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "raysched.hpp"

namespace {

using namespace raysched;

int run_serve(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 64, "number of links in the instance");
  flags.add_int("slots", 2000, "slots to run in this segment");
  flags.add_int("seed", 1, "master seed (instance + all streams)");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_string("propagation", "nonfading", "nonfading|rayleigh");
  flags.add_string("traffic", "poisson", "poisson|bursty|heavy-tailed");
  flags.add_double("rate", 0.05, "Poisson mean packets/link/slot");
  flags.add_double("batch-prob", 0.05, "heavy-tailed per-slot batch prob");
  flags.add_double("tail-alpha", 1.5, "heavy-tailed Pareto exponent");
  flags.add_int("queue-cap", 4096, "per-link queue bound");
  flags.add_double("churn-leave", 0.0, "per-slot leave probability");
  flags.add_double("churn-join", 0.0, "per-slot rejoin probability");
  flags.add_int("recompute-period", 8, "slots between schedule recomputes");
  flags.add_int("recompute-latency", 2, "nominal recompute service slots");
  flags.add_int("recompute-deadline", 6, "slots before a recompute times out");
  flags.add_int("threads", 1, "schedule-agent pool threads (1 = inline)");
  flags.add_string("policy", "max-weight",
                   "max-weight|max-weight-incremental|ahm");
  flags.add_int("overload-enter", 4096, "backlog entering Overloaded");
  flags.add_int("overload-exit", 1024, "backlog leaving Overloaded");
  flags.add_string("faults", "", "fault script, e.g. '120:delay:10,900:crash'");
  flags.add_int("fault-period", 0, "re-fire the fault script every N slots");
  flags.add_string("snapshot", "", "snapshot path (enables persistence)");
  flags.add_int("snapshot-period", 0, "slots between snapshots");
  flags.add_bool("restore", false, "restore from --snapshot before running");
  flags.add_string("digest-out", "", "write per-slot digest CSV here");
  flags.add_bool("quiet", false, "suppress the per-transition log");
  flags.parse(argc - 1, argv + 1);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_serve");
    return 0;
  }

  serve::ServeConfig config;
  config.master_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.beta = units::Threshold(flags.get_double("beta"));
  config.propagation =
      serve::propagation_from_string(flags.get_string("propagation"));
  config.traffic.model =
      serve::traffic_model_from_string(flags.get_string("traffic"));
  config.traffic.mean_rate = flags.get_double("rate");
  config.traffic.batch_prob =
      units::Probability(flags.get_double("batch-prob"));
  config.traffic.tail_alpha = flags.get_double("tail-alpha");
  config.queue_cap = static_cast<std::uint64_t>(flags.get_int("queue-cap"));
  config.churn_leave = units::Probability(flags.get_double("churn-leave"));
  config.churn_join = units::Probability(flags.get_double("churn-join"));
  config.recompute_period =
      static_cast<std::uint64_t>(flags.get_int("recompute-period"));
  config.recompute_latency =
      static_cast<std::uint64_t>(flags.get_int("recompute-latency"));
  config.recompute_deadline =
      static_cast<std::uint64_t>(flags.get_int("recompute-deadline"));
  config.agent_threads = static_cast<std::size_t>(flags.get_int("threads"));
  config.policy = serve::policy_kind_from_string(flags.get_string("policy"));
  config.health.overload_enter_backlog =
      static_cast<std::uint64_t>(flags.get_int("overload-enter"));
  config.health.overload_exit_backlog =
      static_cast<std::uint64_t>(flags.get_int("overload-exit"));
  config.faults = serve::FaultScript::parse(
      flags.get_string("faults"),
      static_cast<std::uint64_t>(flags.get_int("fault-period")));
  config.snapshot_path = flags.get_string("snapshot");
  config.snapshot_period =
      static_cast<std::uint64_t>(flags.get_int("snapshot-period"));

  // The instance is a pure function of the master seed, so a restored run
  // rebuilds the identical network before loading its state.
  util::RngStream net_rng = util::RngStream(config.master_seed).derive(0x4E7);
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  auto links = model::random_plane_links(params, net_rng);
  model::Network net(std::move(links), model::PowerAssignment::uniform(2.0),
                     2.2, units::Power(4e-7));

  serve::Service service(std::move(net), config);
  if (flags.get_bool("restore")) {
    require(!config.snapshot_path.empty(),
            "raysched_serve: --restore needs --snapshot");
    service.restore(serve::load_snapshot(config.snapshot_path));
    std::cout << "restored from " << config.snapshot_path << " at slot "
              << service.next_slot() << "\n";
  }

  const serve::ServeReport report =
      service.run(static_cast<std::uint64_t>(flags.get_int("slots")));

  if (!flags.get_string("digest-out").empty()) {
    std::ofstream out(flags.get_string("digest-out"), std::ios::trunc);
    require(out.good(), "raysched_serve: cannot open digest-out");
    out << "slot,arrivals,served,dropped,backlog,epoch,health\n";
    for (const serve::SlotDigest& d : report.digests) {
      out << d.slot << "," << d.arrivals << "," << d.served << ","
          << d.dropped << "," << d.backlog << "," << d.schedule_epoch << ","
          << serve::to_string(d.health) << "\n";
    }
  }

  if (!flags.get_bool("quiet")) {
    for (const serve::HealthTransition& t : report.transitions) {
      std::cout << "slot " << t.slot << ": " << serve::to_string(t.from)
                << " -> " << serve::to_string(t.to) << " (" << t.reason
                << ")\n";
    }
  }
  std::cout << "slots " << report.slots_run << " next " << report.next_slot
            << " health " << serve::to_string(report.health) << "\n";
  std::cout << "arrivals " << report.arrivals << " admitted "
            << report.admitted << " served " << report.served << " backlog "
            << report.backlog << "\n";
  std::cout << "drops capacity " << report.drops.capacity << " shed "
            << report.drops.shed << " churn " << report.drops.churn
            << " quarantine " << report.drops.quarantine << "\n";
  std::cout << "recompute adoptions " << report.recompute_adoptions
            << " timeouts " << report.recompute_timeouts << " failures "
            << report.recompute_failures << " epoch "
            << report.schedule_epoch << "\n";
  std::cout << "policy " << flags.get_string("policy")
            << " stale-pruned " << report.drops.stale_pruned
            << " expected-rate " << report.expected_rate << "\n";
  std::cout << "trajectory-hash " << report.trajectory_hash << "\n";

  if (!report.conservation_ok) {
    std::cerr << "raysched_serve: CONSERVATION VIOLATED — unexplained drop\n";
    return 5;
  }
  if (report.crashed) {
    std::cout << "crashed at slot " << report.crash_slot
              << " (scripted); restart with --restore\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_serve(argc, argv);
  } catch (const raysched::error& e) {
    std::cerr << "raysched_serve: " << e.what() << "\n";
    return 1;
  }
}
