"""analyzer_common: shared machinery for the raysched_* analyzers.

raysched_arch, raysched_flow, raysched_num, and raysched_mem are
zero-dependency Python analyzers with an identical operational contract:

  * findings carry a stable key; a shrink-only baseline file can park
    known debt (stale entries are themselves errors, so the file only
    ever shrinks — new violations cannot hide behind it);
  * deliberate deviations are suppressed with an inline
    ``// raysched-<tool>: allow(RS-Xn)`` comment and reported as
    ``allowed:`` so reviewers see them;
  * ``--json`` emits a machine-readable report for CI artifacts;
  * ``--self-test`` replays the analyzer against seeded-violation
    mini-repos under tools/lint_fixtures/ and verifies each rule fires
    exactly where expected (and that the *_clean fixture passes).

Before this module each analyzer carried its own copy of that machinery
(Finding, comment stripping, baseline load/apply/write, JSON report,
fixture runner); the four copies had already begun to drift in
formatting details. This module is now the single implementation; the
analyzers keep only their rules.

Nothing here imports beyond the standard library, preserving the
zero-dep contract (the analyzers run in CI containers with a bare
python3).
"""

import argparse
import json
import os
import re


class Finding:
    """One rule violation. `key` is the stable identity used by the
    baseline file; `detail` is the human explanation."""

    def __init__(self, rule, key, path, lineno, detail,
                 suppressed=False, baselined=False):
        self.rule = rule
        self.key = key
        self.path = path
        self.lineno = lineno
        self.detail = detail
        self.suppressed = suppressed
        self.baselined = baselined

    def __str__(self):
        if self.suppressed:
            tag = "allowed"
        elif self.baselined:
            tag = "baselined"
        else:
            tag = "error"
        where = f"{self.path}:{self.lineno}" if self.lineno else self.path
        return f"{tag}: [{self.rule}] {where}: {self.detail}"

    def counts(self):
        """True when the finding fails the run (not allowed/baselined)."""
        return not self.suppressed and not self.baselined

    def as_dict(self):
        return {
            "rule": self.rule,
            "key": self.key,
            "path": self.path,
            "line": self.lineno,
            "detail": self.detail,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    # raysched_arch historically named this as_json; keep the alias so
    # external consumers of its JSON schema see no change.
    as_json = as_dict


def strip_comments(lines, scrub_strings=False):
    """Yields (lineno, code) with // and /* */ comment text removed.

    Line-based, same tradeoffs as raysched_lint: string literals holding
    comment markers may over-strip, which at worst hides a finding inside
    a string literal. With scrub_strings=True the contents of string
    literals are emptied as well, so prose like "== 0.0" or a '/' inside
    a message never looks like arithmetic.
    """
    in_block = False
    for lineno, line in enumerate(lines, start=1):
        code = line
        if in_block:
            end = code.find("*/")
            if end < 0:
                yield lineno, ""
                continue
            code = code[end + 2:]
            in_block = False
        code = re.sub(r"/\*.*?\*/", " ", code)
        start = code.find("/*")
        if start >= 0:
            code = code[:start]
            in_block = True
        slash = code.find("//")
        if slash >= 0:
            code = code[:slash]
        if scrub_strings:
            code = re.sub(r'"(?:[^"\\]|\\.)*"', '""', code)
        yield lineno, code


def iter_source_files(root, rel_dirs, exts=(".cpp", ".hpp", ".h"),
                      excluded_dirnames=("lint_fixtures",)):
    """Yields repo-relative, '/'-separated paths of source files under
    the given top-level directories, fixture mini-repos excluded."""
    for rel in rel_dirs:
        top = os.path.join(root, rel)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames
                           if d not in excluded_dirnames]
            for name in sorted(filenames):
                if name.endswith(exts):
                    rel_file = os.path.relpath(
                        os.path.join(dirpath, name), root)
                    yield rel_file.replace(os.sep, "/")


def read_file(root, relpath, allow_re=None, scrub_strings=False):
    """Returns (raw_lines, {lineno: code}, {lineno: allowed_rule}).

    `allow_re` is the tool's suppression-comment pattern whose group 1
    names the rule (e.g. r"//\\s*raysched-mem:\\s*allow\\((RS-M\\d+)\\)");
    None disables allow parsing.
    """
    with open(os.path.join(root, relpath), encoding="utf-8",
              errors="replace") as f:
        raw = f.readlines()
    allows = {}
    if allow_re is not None:
        for lineno, line in enumerate(raw, start=1):
            m = allow_re.search(line)
            if m:
                allows[lineno] = m.group(1)
    code = dict(strip_comments(raw, scrub_strings=scrub_strings))
    return raw, code, allows


def add_finding(findings, rule, relpath, lineno, detail, allows):
    """Appends a Finding keyed `relpath:detail`, honoring an allow
    comment for `rule` on the same line."""
    key = f"{relpath}:{detail}"
    suppressed = allows.get(lineno) == rule
    findings.append(Finding(rule, key, relpath, lineno, detail, suppressed))


# --- baseline (one `RS-Xn<TAB>key` per line, '#' comments) -----------------


def load_baseline(path, rules):
    """Parses the baseline file; unknown rules or malformed lines raise
    RuntimeError (a broken baseline must fail loudly, not skip silently).
    """
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2 or parts[0] not in rules:
                raise RuntimeError(
                    f"{path}:{lineno}: malformed baseline entry {line!r} "
                    "(expected: <rule> <finding key>)")
            entries.append((parts[0], parts[1]))
    return entries


def apply_baseline(findings, entries, baseline_path):
    """Marks baselined findings; stale baseline entries become errors."""
    matched = {(f.rule, f.key) for f in findings}
    entry_set = set(entries)
    for f in findings:
        if (f.rule, f.key) in entry_set:
            f.baselined = True
    for rule, key in entries:
        if (rule, key) not in matched:
            findings.append(Finding(
                rule, key, baseline_path, 0,
                f"stale baseline entry (no longer matches a finding): "
                f"{key!r} — delete it so the baseline only ever shrinks"))
    return findings


def write_baseline(findings, path, prog, debt_name):
    """Rewrites the baseline from the current unbaselined, unsuppressed
    findings, with the standard shrink-only header."""
    lines = [
        f"# {prog} baseline: known {debt_name} debt, burned down",
        f"# incrementally. One `<rule><TAB>key` per line. Stale entries",
        "# fail the run, so this file can only shrink. Regenerate with",
        f"#   python3 tools/{prog} --write-baseline",
        "# The committed baseline is empty: the repo holds zero debt.",
    ]
    count = 0
    for f in sorted(findings, key=lambda f: (f.rule, f.key)):
        if not f.baselined and not f.suppressed:
            lines.append(f"{f.rule}\t{f.key}")
            count += 1
    with open(path, "w", encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")
    print(f"wrote {path} ({count} entries)")


# --- reports ---------------------------------------------------------------


def emit_json(findings, stream, rules, extra=None):
    doc = {
        "rules": rules,
        "findings": [f.as_dict() for f in findings],
        "errors": sum(1 for f in findings if f.counts()),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings if f.baselined),
    }
    if extra:
        doc.update(extra)
    json.dump(doc, stream, indent=2, sort_keys=True)
    stream.write("\n")


def write_json_report(findings, json_arg, rules, extra=None):
    """Honors the --json argument: '-' means stdout, otherwise a path."""
    import sys
    if json_arg == "-":
        emit_json(findings, sys.stdout, rules, extra)
    else:
        with open(json_arg, "w", encoding="utf-8") as out:
            emit_json(findings, out, rules, extra)


def report(findings, prog):
    """Prints findings sorted by location and the summary line; returns
    the process exit code (0 clean, 1 findings)."""
    errors = 0
    for f in sorted(findings, key=lambda f: (f.path, f.lineno, f.rule)):
        print(f)
        if f.counts():
            errors += 1
    suppressed = sum(1 for f in findings if f.suppressed)
    baselined = sum(1 for f in findings if f.baselined)
    print(f"{prog}: {errors} error(s), {suppressed} suppression(s), "
          f"{baselined} baselined")
    return 1 if errors else 0


# --- fixture self-test -----------------------------------------------------


def fixture_self_test(fixture_root, expectations, run_checks,
                      clean_name=None, exact=False):
    """Replays run_checks against the seeded-violation mini-repos.

    expectations: {fixture_dir: rule} (or {fixture_dir: set_of_rules}
    with exact=True, where the fired set must match exactly — the
    raysched_arch convention). clean_name (if given) must produce zero
    countable findings. Returns the process exit code.
    """
    failures = []
    for name in sorted(expectations):
        expected = expectations[name]
        root = os.path.join(fixture_root, name)
        if not os.path.isdir(root):
            failures.append(f"{name}: fixture directory missing")
            continue
        findings = run_checks(root)
        fired = {f.rule for f in findings if f.counts()}
        if exact:
            want = set(expected)
            if fired != want:
                failures.append(
                    f"{name}: expected exactly {sorted(want)} to fire, "
                    f"got {sorted(fired)}")
            else:
                label = ", ".join(sorted(want)) or "no findings"
                print(f"self-test: {name}: {label}, as expected")
        else:
            if expected not in fired:
                failures.append(
                    f"{name}: expected {expected} to fire, "
                    f"got {sorted(fired)}")
            else:
                print(f"self-test: {name}: {expected} fired as expected")
    if clean_name is not None:
        root = os.path.join(fixture_root, clean_name)
        if not os.path.isdir(root):
            failures.append(f"{clean_name}: fixture directory missing")
        else:
            bad = [f for f in run_checks(root) if f.counts()]
            if bad:
                failures.append(
                    f"{clean_name}: expected no findings, got: "
                    + "; ".join(str(f) for f in bad))
            else:
                print(f"self-test: {clean_name}: no findings, as expected")
    if failures:
        for f in failures:
            print("self-test FAILURE:", f)
        return 1
    print("self-test: all fixtures behaved")
    return 0


# --- shared CLI ------------------------------------------------------------


def make_parser(prog, doc, baseline_default, fixture_glob):
    """The analyzers' common argument surface. Callers may add
    tool-specific options (e.g. raysched_arch's --dot) afterwards."""
    parser = argparse.ArgumentParser(
        prog=prog, description=doc,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {baseline_default})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="emit findings as JSON to PATH ('-' = stdout)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the analyzer fires on the seeded "
                             f"violations in tools/lint_fixtures/"
                             f"{fixture_glob}")
    return parser
