// raysched_cli: command-line driver for the library.
//
// Subcommands:
//   generate  — draw a random instance and write it to a file
//   inspect   — print summary statistics of a stored instance
//   schedule  — run a capacity algorithm + Lemma-2 transfer on an instance
//   latency   — run a latency scheduler on an instance
//   simulate  — estimate expected successes under uniform transmission
//               probability (both models)
//   sweep     — fault-isolated Monte-Carlo sweep over random networks with
//               checkpoint/resume and a failure report
//
// Examples:
//   raysched_cli generate --links=100 --seed=7 --out=inst.net
//   raysched_cli schedule --in=inst.net --beta=2.5 --algorithm=greedy
//   raysched_cli latency --in=inst.net --beta=2.5 --scheduler=aloha
//       --model=rayleigh
//   raysched_cli simulate --in=inst.net --beta=2.5 --q=0.5
//   raysched_cli sweep --networks=20 --trials=50 --fault-policy=retry
//       --checkpoint=sweep.ckpt
//
// Exit codes: 0 success; 1 error or bad usage; 3 sweep completed but some
// cells failed and were skipped; 4 sweep interrupted (deadline).
#include <iostream>
#include <string>

#include "fault_injection.hpp"
#include "raysched.hpp"

using namespace raysched;

namespace {

int cmd_generate(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 100, "number of links");
  flags.add_double("plane", 1000.0, "plane side length");
  flags.add_double("min-length", 20.0, "minimal link length");
  flags.add_double("max-length", 40.0, "maximal link length");
  flags.add_double("alpha", 2.2, "path-loss exponent");
  flags.add_double("noise", 4e-7, "ambient noise");
  flags.add_double("power", 2.0, "power base");
  flags.add_string("power-scheme", "uniform", "uniform|sqrt|linear");
  flags.add_int("seed", 1, "instance seed");
  flags.add_string("out", "instance.net", "output path");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli generate");
    return 0;
  }
  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  params.plane_size = flags.get_double("plane");
  params.min_length = flags.get_double("min-length");
  params.max_length = flags.get_double("max-length");
  auto links = model::random_plane_links(params, rng);
  const std::string scheme = flags.get_string("power-scheme");
  const double base = flags.get_double("power");
  model::PowerAssignment power =
      scheme == "sqrt" ? model::PowerAssignment::square_root(base)
      : scheme == "linear" ? model::PowerAssignment::linear(base)
                           : model::PowerAssignment::uniform(base);
  require(scheme == "uniform" || scheme == "sqrt" || scheme == "linear",
          "generate: unknown --power-scheme " + scheme);
  const model::Network net(std::move(links), power, flags.get_double("alpha"),
                           units::Power(flags.get_double("noise")));
  model::save_network(flags.get_string("out"), net);
  std::cout << "wrote " << net.size() << "-link instance to "
            << flags.get_string("out") << "\n";
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "threshold for derived statistics");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli inspect");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  const double beta = flags.get_double("beta");
  util::Table table({"property", "value"});
  table.add_row({std::string("links"), static_cast<long long>(net.size())});
  table.add_row({std::string("noise"), net.noise()});
  table.add_row({std::string("geometric"),
                 std::string(net.has_geometry() ? "yes" : "no")});
  if (net.has_geometry()) {
    table.add_row({std::string("alpha"), net.alpha()});
    table.add_row({std::string("length ratio Delta"), net.length_ratio()});
  }
  sim::Accumulator alone;
  for (model::LinkId i = 0; i < net.size(); ++i) {
    alone.add(net.noise() > 0.0
                  ? net.signal(i) / net.noise()
                  : std::numeric_limits<double>::infinity());
  }
  if (net.noise() > 0.0) {
    table.add_row({std::string("min alone-SNR"), alone.min()});
    table.add_row({std::string("median-ish alone-SNR (mean)"), alone.mean()});
  }
  const auto greedy = algorithms::greedy_capacity(net, beta);
  table.add_row({std::string("greedy capacity at beta"),
                 static_cast<long long>(greedy.selected.size())});
  table.print_text(std::cout);
  return 0;
}

int cmd_schedule(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_string("algorithm", "greedy",
                   "greedy|power-control|local-search|flexible");
  flags.add_int("seed", 1, "rng seed (MC evaluation only)");
  flags.add_bool("print-set", false, "print the selected link ids");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli schedule");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  const std::string algo = flags.get_string("algorithm");
  algorithms::ReductionOptions opts;
  if (algo == "greedy") opts.algorithm = algorithms::NonFadingAlgorithm::Greedy;
  else if (algo == "power-control")
    opts.algorithm = algorithms::NonFadingAlgorithm::PowerControl;
  else if (algo == "local-search")
    opts.algorithm = algorithms::NonFadingAlgorithm::LocalSearch;
  else if (algo == "flexible")
    opts.algorithm = algorithms::NonFadingAlgorithm::FlexibleRate;
  else
    throw error("schedule: unknown --algorithm " + algo);
  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto decision = algorithms::schedule_capacity_rayleigh(
      net, core::Utility::binary(units::Threshold(flags.get_double("beta"))), opts, rng);
  util::Table table({"quantity", "value"});
  table.add_row({std::string("algorithm"), decision.algorithm});
  table.add_row({std::string("selected links"),
                 static_cast<long long>(decision.transmit_set.size())});
  table.add_row({std::string("non-fading value"), decision.nonfading_value});
  table.add_row({std::string("E[rayleigh value]"),
                 decision.expected_rayleigh_value});
  table.add_row({std::string("Lemma-2 ratio (>= 0.3679)"),
                 decision.lemma2_ratio});
  table.print_text(std::cout);
  if (flags.get_bool("print-set")) {
    std::cout << "set:";
    for (model::LinkId i : decision.transmit_set) std::cout << " " << i;
    std::cout << "\n";
  }
  return 0;
}

int cmd_latency(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_string("scheduler", "aloha", "aloha|repeated");
  flags.add_string("model", "rayleigh", "rayleigh|nonfading");
  flags.add_int("seed", 1, "rng seed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli latency");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  const auto prop = flags.get_string("model") == "nonfading"
                        ? algorithms::Propagation::NonFading
                        : algorithms::Propagation::Rayleigh;
  require(flags.get_string("model") == "nonfading" ||
              flags.get_string("model") == "rayleigh",
          "latency: unknown --model " + flags.get_string("model"));
  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  algorithms::LatencyResult result;
  if (flags.get_string("scheduler") == "aloha") {
    result = algorithms::aloha_schedule(net, flags.get_double("beta"), prop,
                                        rng);
  } else if (flags.get_string("scheduler") == "repeated") {
    result = algorithms::repeated_capacity_schedule(
        net, flags.get_double("beta"), prop, rng);
  } else {
    throw error("latency: unknown --scheduler " +
                flags.get_string("scheduler"));
  }
  std::cout << "latency: " << result.slots << " slots, completed="
            << (result.completed ? "yes" : "no") << "\n";
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_double("q", 0.5, "uniform transmission probability");
  flags.add_int("trials", 2000, "non-fading Monte-Carlo trials");
  flags.add_int("seed", 1, "rng seed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli simulate");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  std::vector<double> q(net.size(), flags.get_double("q"));
  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const double rayleigh =
      core::expected_rayleigh_successes(net, units::probabilities(q), units::Threshold(flags.get_double("beta")));
  const double nonfading = core::expected_nonfading_successes_mc(
      net, units::probabilities(q), units::Threshold(flags.get_double("beta")),
      static_cast<std::size_t>(flags.get_int("trials")), rng);
  std::cout << "expected successes at q=" << flags.get_double("q")
            << ": non-fading(MC)=" << nonfading
            << " rayleigh(exact)=" << rayleigh << "\n";
  return 0;
}

// Exit codes of the sweep subcommand (0 and 1 follow the global convention).
constexpr int kExitSweepHadFailures = 3;
constexpr int kExitSweepInterrupted = 4;

int cmd_sweep(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("networks", 10, "number of random networks");
  flags.add_int("trials", 25, "trials per network");
  flags.add_int("links", 50, "links per network");
  flags.add_int("seed", 1, "master seed");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_double("q", 0.5, "uniform transmission probability");
  flags.add_int("threads", 1, "worker threads (networks in parallel)");
  flags.add_string("fault-policy", "abort", "abort|skip|retry");
  flags.add_int("max-retries", 2, "extra attempts per cell (retry policy)");
  flags.add_double("cell-time-limit", 0.0,
                   "seconds per cell before a timeout failure (0 = off)");
  flags.add_string("checkpoint", "", "checkpoint file path (empty = off)");
  flags.add_int("checkpoint-every", 8, "networks between checkpoint writes");
  flags.add_string("resume", "", "resume from this checkpoint file");
  flags.add_double("deadline", 0.0, "wall-clock budget in seconds (0 = off)");
  flags.add_string("inject-throw", "",
                   "fault injection: net:trial[,net:trial...]; trial 'f' = "
                   "instance factory");
  flags.add_string("inject-nan", "",
                   "fault injection: poison metric 0 with NaN at "
                   "net:trial[,...]");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli sweep");
    return 0;
  }

  sim::ExperimentConfig config;
  config.num_networks = static_cast<std::size_t>(flags.get_int("networks"));
  config.trials_per_network =
      static_cast<std::size_t>(flags.get_int("trials"));
  config.master_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.num_threads = static_cast<std::size_t>(flags.get_int("threads"));
  const std::string policy = flags.get_string("fault-policy");
  if (policy == "abort") {
    config.fault_policy = sim::FaultPolicy::Abort;
  } else if (policy == "skip") {
    config.fault_policy = sim::FaultPolicy::Skip;
  } else if (policy == "retry") {
    config.fault_policy = sim::FaultPolicy::RetryThenSkip;
  } else {
    throw error("sweep: unknown --fault-policy " + policy);
  }
  config.max_retries = static_cast<std::size_t>(flags.get_int("max-retries"));
  config.cell_time_limit = flags.get_double("cell-time-limit");
  config.checkpoint_path = flags.get_string("checkpoint");
  config.checkpoint_every =
      static_cast<std::size_t>(flags.get_int("checkpoint-every"));
  config.resume_from = flags.get_string("resume");
  config.deadline = flags.get_double("deadline");

  const auto num_links = static_cast<std::size_t>(flags.get_int("links"));
  const double beta = flags.get_double("beta");
  const double q = flags.get_double("q");
  require(q >= 0.0 && q <= 1.0, "sweep: --q must be in [0,1]");

  const sim::InstanceFactory factory = [num_links](util::RngStream& rng) {
    model::RandomPlaneParams params;
    params.num_links = num_links;
    auto links = model::random_plane_links(params, rng);
    return model::Network(std::move(links),
                          model::PowerAssignment::uniform(2.0), 2.2, units::Power(4e-7));
  };
  sim::TrialFunction trial = [beta, q](const model::Network& net,
                                       util::RngStream& rng) {
    model::LinkSet active;
    for (model::LinkId i = 0; i < net.size(); ++i) {
      if (rng.bernoulli(q)) active.push_back(i);
    }
    const auto wins = static_cast<double>(
        model::count_successes_rayleigh(net, active, units::Threshold(beta), rng));
    return std::vector<double>{
        wins, net.size() > 0 ? wins / static_cast<double>(net.size()) : 0.0};
  };

  // Optional deterministic sabotage, for demonstrating the fault policies.
  // Sites naming a trial wrap the trial function; 'f' sites wrap the factory.
  std::vector<raysched::testing::FaultSite> sites = raysched::testing::
      parse_fault_sites(flags.get_string("inject-throw"),
                        raysched::testing::FaultAction::Throw);
  const auto nan_sites = raysched::testing::parse_fault_sites(
      flags.get_string("inject-nan"), raysched::testing::FaultAction::ReturnNan);
  sites.insert(sites.end(), nan_sites.begin(), nan_sites.end());
  std::vector<raysched::testing::FaultSite> trial_sites, factory_sites;
  for (const auto& site : sites) {
    (site.trial_idx == sim::kNoTrial ? factory_sites : trial_sites)
        .push_back(site);
  }
  sim::InstanceFactory wrapped_factory = factory;
  if (!trial_sites.empty()) {
    trial = raysched::testing::inject_faults(std::move(trial), trial_sites);
  }
  if (!factory_sites.empty()) {
    wrapped_factory =
        raysched::testing::inject_factory_faults(factory, factory_sites);
  }

  const auto result = sim::run_experiment(
      config, {"successes", "success_rate"}, wrapped_factory, trial);

  util::Table stats({"metric", "cells", "mean", "ci95", "min", "max"});
  for (std::size_t k = 0; k < result.num_metrics(); ++k) {
    const sim::Accumulator& acc = result.per_trial[k];
    if (acc.count() == 0) {
      stats.add_row({result.metric_names[k], static_cast<long long>(0),
                     std::string("-"), std::string("-"), std::string("-"),
                     std::string("-")});
      continue;
    }
    stats.add_row({result.metric_names[k],
                   static_cast<long long>(acc.count()), acc.mean(),
                   acc.ci95_halfwidth(), acc.min(), acc.max()});
  }
  stats.print_text(std::cout);

  std::cout << "networks: " << result.networks_completed << "/"
            << config.num_networks << " completed";
  if (result.networks_resumed > 0) {
    std::cout << " (" << result.networks_resumed << " resumed)";
  }
  std::cout << "; cells: " << result.cells_completed << " ok, "
            << result.cells_skipped << " skipped; retries: "
            << result.retries_used << "\n";

  if (!result.failures.empty()) {
    std::cout << "\nfailure report (" << result.failures.size()
              << " contained fault"
              << (result.failures.size() == 1 ? "" : "s") << "):\n";
    sim::failure_report(result.failures).print_text(std::cout);
  }
  if (result.interrupted) {
    std::cout << "sweep interrupted before completion";
    if (!config.checkpoint_path.empty()) {
      std::cout << " — resume with --resume=" << config.checkpoint_path;
    }
    std::cout << "\n";
    return kExitSweepInterrupted;
  }
  return result.failures.empty() ? 0 : kExitSweepHadFailures;
}

void print_usage() {
  std::cout
      << "usage: raysched_cli <command> [flags]\n"
         "commands: generate, inspect, schedule, latency, simulate, sweep\n"
         "run 'raysched_cli <command> --help' for per-command flags\n"
         "exit codes: 0 ok; 1 error; 3 sweep had contained failures; "
         "4 sweep interrupted\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "inspect") return cmd_inspect(argc - 1, argv + 1);
    if (command == "schedule") return cmd_schedule(argc - 1, argv + 1);
    if (command == "latency") return cmd_latency(argc - 1, argv + 1);
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "--help" || command == "-h") {
      print_usage();
      return 0;
    }
    std::cerr << "unknown command '" << command << "'\n";
    print_usage();
    return 1;
  } catch (const error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
