// raysched_cli: command-line driver for the library.
//
// Subcommands:
//   generate  — draw a random instance and write it to a file
//   inspect   — print summary statistics of a stored instance
//   schedule  — run a capacity algorithm + Lemma-2 transfer on an instance
//   latency   — run a latency scheduler on an instance
//   simulate  — estimate expected successes under uniform transmission
//               probability (both models)
//
// Examples:
//   raysched_cli generate --links=100 --seed=7 --out=inst.net
//   raysched_cli schedule --in=inst.net --beta=2.5 --algorithm=greedy
//   raysched_cli latency --in=inst.net --beta=2.5 --scheduler=aloha
//       --model=rayleigh
//   raysched_cli simulate --in=inst.net --beta=2.5 --q=0.5
#include <iostream>
#include <string>

#include "raysched.hpp"

using namespace raysched;

namespace {

int cmd_generate(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 100, "number of links");
  flags.add_double("plane", 1000.0, "plane side length");
  flags.add_double("min-length", 20.0, "minimal link length");
  flags.add_double("max-length", 40.0, "maximal link length");
  flags.add_double("alpha", 2.2, "path-loss exponent");
  flags.add_double("noise", 4e-7, "ambient noise");
  flags.add_double("power", 2.0, "power base");
  flags.add_string("power-scheme", "uniform", "uniform|sqrt|linear");
  flags.add_int("seed", 1, "instance seed");
  flags.add_string("out", "instance.net", "output path");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli generate");
    return 0;
  }
  sim::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  params.plane_size = flags.get_double("plane");
  params.min_length = flags.get_double("min-length");
  params.max_length = flags.get_double("max-length");
  auto links = model::random_plane_links(params, rng);
  const std::string scheme = flags.get_string("power-scheme");
  const double base = flags.get_double("power");
  model::PowerAssignment power =
      scheme == "sqrt" ? model::PowerAssignment::square_root(base)
      : scheme == "linear" ? model::PowerAssignment::linear(base)
                           : model::PowerAssignment::uniform(base);
  require(scheme == "uniform" || scheme == "sqrt" || scheme == "linear",
          "generate: unknown --power-scheme " + scheme);
  const model::Network net(std::move(links), power, flags.get_double("alpha"),
                           flags.get_double("noise"));
  model::save_network(flags.get_string("out"), net);
  std::cout << "wrote " << net.size() << "-link instance to "
            << flags.get_string("out") << "\n";
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "threshold for derived statistics");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli inspect");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  const double beta = flags.get_double("beta");
  util::Table table({"property", "value"});
  table.add_row({std::string("links"), static_cast<long long>(net.size())});
  table.add_row({std::string("noise"), net.noise()});
  table.add_row({std::string("geometric"),
                 std::string(net.has_geometry() ? "yes" : "no")});
  if (net.has_geometry()) {
    table.add_row({std::string("alpha"), net.alpha()});
    table.add_row({std::string("length ratio Delta"), net.length_ratio()});
  }
  sim::Accumulator alone;
  for (model::LinkId i = 0; i < net.size(); ++i) {
    alone.add(net.noise() > 0.0
                  ? net.signal(i) / net.noise()
                  : std::numeric_limits<double>::infinity());
  }
  if (net.noise() > 0.0) {
    table.add_row({std::string("min alone-SNR"), alone.min()});
    table.add_row({std::string("median-ish alone-SNR (mean)"), alone.mean()});
  }
  const auto greedy = algorithms::greedy_capacity(net, beta);
  table.add_row({std::string("greedy capacity at beta"),
                 static_cast<long long>(greedy.selected.size())});
  table.print_text(std::cout);
  return 0;
}

int cmd_schedule(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_string("algorithm", "greedy",
                   "greedy|power-control|local-search|flexible");
  flags.add_int("seed", 1, "rng seed (MC evaluation only)");
  flags.add_bool("print-set", false, "print the selected link ids");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli schedule");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  const std::string algo = flags.get_string("algorithm");
  core::ReductionOptions opts;
  if (algo == "greedy") opts.algorithm = core::NonFadingAlgorithm::Greedy;
  else if (algo == "power-control")
    opts.algorithm = core::NonFadingAlgorithm::PowerControl;
  else if (algo == "local-search")
    opts.algorithm = core::NonFadingAlgorithm::LocalSearch;
  else if (algo == "flexible")
    opts.algorithm = core::NonFadingAlgorithm::FlexibleRate;
  else
    throw error("schedule: unknown --algorithm " + algo);
  sim::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto decision = core::schedule_capacity_rayleigh(
      net, core::Utility::binary(flags.get_double("beta")), opts, rng);
  util::Table table({"quantity", "value"});
  table.add_row({std::string("algorithm"), decision.algorithm});
  table.add_row({std::string("selected links"),
                 static_cast<long long>(decision.transmit_set.size())});
  table.add_row({std::string("non-fading value"), decision.nonfading_value});
  table.add_row({std::string("E[rayleigh value]"),
                 decision.expected_rayleigh_value});
  table.add_row({std::string("Lemma-2 ratio (>= 0.3679)"),
                 decision.lemma2_ratio});
  table.print_text(std::cout);
  if (flags.get_bool("print-set")) {
    std::cout << "set:";
    for (model::LinkId i : decision.transmit_set) std::cout << " " << i;
    std::cout << "\n";
  }
  return 0;
}

int cmd_latency(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_string("scheduler", "aloha", "aloha|repeated");
  flags.add_string("model", "rayleigh", "rayleigh|nonfading");
  flags.add_int("seed", 1, "rng seed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli latency");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  const auto prop = flags.get_string("model") == "nonfading"
                        ? algorithms::Propagation::NonFading
                        : algorithms::Propagation::Rayleigh;
  require(flags.get_string("model") == "nonfading" ||
              flags.get_string("model") == "rayleigh",
          "latency: unknown --model " + flags.get_string("model"));
  sim::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  algorithms::LatencyResult result;
  if (flags.get_string("scheduler") == "aloha") {
    result = algorithms::aloha_schedule(net, flags.get_double("beta"), prop,
                                        rng);
  } else if (flags.get_string("scheduler") == "repeated") {
    result = algorithms::repeated_capacity_schedule(
        net, flags.get_double("beta"), prop, rng);
  } else {
    throw error("latency: unknown --scheduler " +
                flags.get_string("scheduler"));
  }
  std::cout << "latency: " << result.slots << " slots, completed="
            << (result.completed ? "yes" : "no") << "\n";
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("in", "instance.net", "instance path");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_double("q", 0.5, "uniform transmission probability");
  flags.add_int("trials", 2000, "non-fading Monte-Carlo trials");
  flags.add_int("seed", 1, "rng seed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("raysched_cli simulate");
    return 0;
  }
  const auto net = model::load_network(flags.get_string("in"));
  std::vector<double> q(net.size(), flags.get_double("q"));
  sim::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const double rayleigh =
      core::expected_rayleigh_successes(net, q, flags.get_double("beta"));
  const double nonfading = core::expected_nonfading_successes_mc(
      net, q, flags.get_double("beta"),
      static_cast<std::size_t>(flags.get_int("trials")), rng);
  std::cout << "expected successes at q=" << flags.get_double("q")
            << ": non-fading(MC)=" << nonfading
            << " rayleigh(exact)=" << rayleigh << "\n";
  return 0;
}

void print_usage() {
  std::cout
      << "usage: raysched_cli <command> [flags]\n"
         "commands: generate, inspect, schedule, latency, simulate\n"
         "run 'raysched_cli <command> --help' for per-command flags\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "inspect") return cmd_inspect(argc - 1, argv + 1);
    if (command == "schedule") return cmd_schedule(argc - 1, argv + 1);
    if (command == "latency") return cmd_latency(argc - 1, argv + 1);
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "--help" || command == "-h") {
      print_usage();
      return 0;
    }
    std::cerr << "unknown command '" << command << "'\n";
    print_usage();
    return 1;
  } catch (const error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
