# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools_build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/raysched_cli" "generate" "--links=20" "--seed=3" "--out=/root/repo/build/tools_build/cli_smoke.net")
set_tests_properties(cli_generate PROPERTIES  FIXTURES_SETUP "cli_instance" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_inspect "/root/repo/build/tools/raysched_cli" "inspect" "--in=/root/repo/build/tools_build/cli_smoke.net" "--beta=2.5")
set_tests_properties(cli_inspect PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule "/root/repo/build/tools/raysched_cli" "schedule" "--in=/root/repo/build/tools_build/cli_smoke.net" "--beta=2.5")
set_tests_properties(cli_schedule PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/raysched_cli" "simulate" "--in=/root/repo/build/tools_build/cli_smoke.net" "--beta=2.5")
set_tests_properties(cli_simulate PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_latency "/root/repo/build/tools/raysched_cli" "latency" "--in=/root/repo/build/tools_build/cli_smoke.net" "--beta=2.5" "--scheduler=repeated" "--model=nonfading")
set_tests_properties(cli_latency PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule_power_control "/root/repo/build/tools/raysched_cli" "schedule" "--in=/root/repo/build/tools_build/cli_smoke.net" "--beta=2.5" "--algorithm=power-control" "--print-set")
set_tests_properties(cli_schedule_power_control PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_command "/root/repo/build/tools/raysched_cli" "frobnicate")
set_tests_properties(cli_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
