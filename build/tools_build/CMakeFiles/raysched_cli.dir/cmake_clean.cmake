file(REMOVE_RECURSE
  "../tools/raysched_cli"
  "../tools/raysched_cli.pdb"
  "CMakeFiles/raysched_cli.dir/raysched_cli.cpp.o"
  "CMakeFiles/raysched_cli.dir/raysched_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raysched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
