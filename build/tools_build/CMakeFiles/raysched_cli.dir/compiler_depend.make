# Empty compiler generated dependencies file for raysched_cli.
# This may be replaced when dependencies are built.
