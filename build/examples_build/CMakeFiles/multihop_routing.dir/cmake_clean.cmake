file(REMOVE_RECURSE
  "../examples/multihop_routing"
  "../examples/multihop_routing.pdb"
  "CMakeFiles/multihop_routing.dir/multihop_routing.cpp.o"
  "CMakeFiles/multihop_routing.dir/multihop_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
