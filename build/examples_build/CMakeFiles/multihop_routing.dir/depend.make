# Empty dependencies file for multihop_routing.
# This may be replaced when dependencies are built.
