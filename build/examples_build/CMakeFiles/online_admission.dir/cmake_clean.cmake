file(REMOVE_RECURSE
  "../examples/online_admission"
  "../examples/online_admission.pdb"
  "CMakeFiles/online_admission.dir/online_admission.cpp.o"
  "CMakeFiles/online_admission.dir/online_admission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
