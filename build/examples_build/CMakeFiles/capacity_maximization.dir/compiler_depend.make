# Empty compiler generated dependencies file for capacity_maximization.
# This may be replaced when dependencies are built.
