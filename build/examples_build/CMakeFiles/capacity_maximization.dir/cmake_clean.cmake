file(REMOVE_RECURSE
  "../examples/capacity_maximization"
  "../examples/capacity_maximization.pdb"
  "CMakeFiles/capacity_maximization.dir/capacity_maximization.cpp.o"
  "CMakeFiles/capacity_maximization.dir/capacity_maximization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_maximization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
