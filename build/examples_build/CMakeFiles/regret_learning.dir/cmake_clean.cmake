file(REMOVE_RECURSE
  "../examples/regret_learning"
  "../examples/regret_learning.pdb"
  "CMakeFiles/regret_learning.dir/regret_learning.cpp.o"
  "CMakeFiles/regret_learning.dir/regret_learning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regret_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
