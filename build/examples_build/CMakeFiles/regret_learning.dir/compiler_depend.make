# Empty compiler generated dependencies file for regret_learning.
# This may be replaced when dependencies are built.
