# Empty compiler generated dependencies file for latency_scheduling.
# This may be replaced when dependencies are built.
