file(REMOVE_RECURSE
  "../examples/latency_scheduling"
  "../examples/latency_scheduling.pdb"
  "CMakeFiles/latency_scheduling.dir/latency_scheduling.cpp.o"
  "CMakeFiles/latency_scheduling.dir/latency_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
