file(REMOVE_RECURSE
  "../examples/rayleigh_optimum"
  "../examples/rayleigh_optimum.pdb"
  "CMakeFiles/rayleigh_optimum.dir/rayleigh_optimum.cpp.o"
  "CMakeFiles/rayleigh_optimum.dir/rayleigh_optimum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rayleigh_optimum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
