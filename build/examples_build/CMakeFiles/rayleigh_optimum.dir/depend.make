# Empty dependencies file for rayleigh_optimum.
# This may be replaced when dependencies are built.
