file(REMOVE_RECURSE
  "../examples/model_comparison"
  "../examples/model_comparison.pdb"
  "CMakeFiles/model_comparison.dir/model_comparison.cpp.o"
  "CMakeFiles/model_comparison.dir/model_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
