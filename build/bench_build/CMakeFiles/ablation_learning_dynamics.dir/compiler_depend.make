# Empty compiler generated dependencies file for ablation_learning_dynamics.
# This may be replaced when dependencies are built.
