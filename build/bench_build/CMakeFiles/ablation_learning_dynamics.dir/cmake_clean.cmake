file(REMOVE_RECURSE
  "../bench/ablation_learning_dynamics"
  "../bench/ablation_learning_dynamics.pdb"
  "CMakeFiles/ablation_learning_dynamics.dir/ablation_learning_dynamics.cpp.o"
  "CMakeFiles/ablation_learning_dynamics.dir/ablation_learning_dynamics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learning_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
