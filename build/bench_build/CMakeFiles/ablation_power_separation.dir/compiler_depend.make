# Empty compiler generated dependencies file for ablation_power_separation.
# This may be replaced when dependencies are built.
