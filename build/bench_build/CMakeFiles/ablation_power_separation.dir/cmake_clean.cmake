file(REMOVE_RECURSE
  "../bench/ablation_power_separation"
  "../bench/ablation_power_separation.pdb"
  "CMakeFiles/ablation_power_separation.dir/ablation_power_separation.cpp.o"
  "CMakeFiles/ablation_power_separation.dir/ablation_power_separation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
