# Empty compiler generated dependencies file for ablation_lemma1_bounds.
# This may be replaced when dependencies are built.
