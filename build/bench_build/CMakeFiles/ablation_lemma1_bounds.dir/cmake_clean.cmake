file(REMOVE_RECURSE
  "../bench/ablation_lemma1_bounds"
  "../bench/ablation_lemma1_bounds.pdb"
  "CMakeFiles/ablation_lemma1_bounds.dir/ablation_lemma1_bounds.cpp.o"
  "CMakeFiles/ablation_lemma1_bounds.dir/ablation_lemma1_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lemma1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
