# Empty compiler generated dependencies file for fig1_success_vs_probability.
# This may be replaced when dependencies are built.
