file(REMOVE_RECURSE
  "../bench/fig1_success_vs_probability"
  "../bench/fig1_success_vs_probability.pdb"
  "CMakeFiles/fig1_success_vs_probability.dir/fig1_success_vs_probability.cpp.o"
  "CMakeFiles/fig1_success_vs_probability.dir/fig1_success_vs_probability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_success_vs_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
