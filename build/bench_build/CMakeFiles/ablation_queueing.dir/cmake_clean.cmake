file(REMOVE_RECURSE
  "../bench/ablation_queueing"
  "../bench/ablation_queueing.pdb"
  "CMakeFiles/ablation_queueing.dir/ablation_queueing.cpp.o"
  "CMakeFiles/ablation_queueing.dir/ablation_queueing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
