# Empty dependencies file for ablation_latency_transform.
# This may be replaced when dependencies are built.
