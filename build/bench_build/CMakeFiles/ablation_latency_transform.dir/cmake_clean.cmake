file(REMOVE_RECURSE
  "../bench/ablation_latency_transform"
  "../bench/ablation_latency_transform.pdb"
  "CMakeFiles/ablation_latency_transform.dir/ablation_latency_transform.cpp.o"
  "CMakeFiles/ablation_latency_transform.dir/ablation_latency_transform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
