file(REMOVE_RECURSE
  "../bench/ablation_lemma2_transfer"
  "../bench/ablation_lemma2_transfer.pdb"
  "CMakeFiles/ablation_lemma2_transfer.dir/ablation_lemma2_transfer.cpp.o"
  "CMakeFiles/ablation_lemma2_transfer.dir/ablation_lemma2_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lemma2_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
