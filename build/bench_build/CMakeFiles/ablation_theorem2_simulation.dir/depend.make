# Empty dependencies file for ablation_theorem2_simulation.
# This may be replaced when dependencies are built.
