file(REMOVE_RECURSE
  "../bench/ablation_theorem2_simulation"
  "../bench/ablation_theorem2_simulation.pdb"
  "CMakeFiles/ablation_theorem2_simulation.dir/ablation_theorem2_simulation.cpp.o"
  "CMakeFiles/ablation_theorem2_simulation.dir/ablation_theorem2_simulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_theorem2_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
