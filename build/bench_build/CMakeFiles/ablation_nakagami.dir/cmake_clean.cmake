file(REMOVE_RECURSE
  "../bench/ablation_nakagami"
  "../bench/ablation_nakagami.pdb"
  "CMakeFiles/ablation_nakagami.dir/ablation_nakagami.cpp.o"
  "CMakeFiles/ablation_nakagami.dir/ablation_nakagami.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nakagami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
