# Empty dependencies file for ablation_nakagami.
# This may be replaced when dependencies are built.
