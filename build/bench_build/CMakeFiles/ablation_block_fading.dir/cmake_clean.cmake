file(REMOVE_RECURSE
  "../bench/ablation_block_fading"
  "../bench/ablation_block_fading.pdb"
  "CMakeFiles/ablation_block_fading.dir/ablation_block_fading.cpp.o"
  "CMakeFiles/ablation_block_fading.dir/ablation_block_fading.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_block_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
