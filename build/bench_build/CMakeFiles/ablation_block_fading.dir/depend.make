# Empty dependencies file for ablation_block_fading.
# This may be replaced when dependencies are built.
