file(REMOVE_RECURSE
  "../bench/ablation_online"
  "../bench/ablation_online.pdb"
  "CMakeFiles/ablation_online.dir/ablation_online.cpp.o"
  "CMakeFiles/ablation_online.dir/ablation_online.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
