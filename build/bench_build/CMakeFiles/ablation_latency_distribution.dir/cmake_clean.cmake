file(REMOVE_RECURSE
  "../bench/ablation_latency_distribution"
  "../bench/ablation_latency_distribution.pdb"
  "CMakeFiles/ablation_latency_distribution.dir/ablation_latency_distribution.cpp.o"
  "CMakeFiles/ablation_latency_distribution.dir/ablation_latency_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
