# Empty compiler generated dependencies file for ablation_capacity_algorithms.
# This may be replaced when dependencies are built.
