file(REMOVE_RECURSE
  "../bench/ablation_capacity_algorithms"
  "../bench/ablation_capacity_algorithms.pdb"
  "CMakeFiles/ablation_capacity_algorithms.dir/ablation_capacity_algorithms.cpp.o"
  "CMakeFiles/ablation_capacity_algorithms.dir/ablation_capacity_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capacity_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
