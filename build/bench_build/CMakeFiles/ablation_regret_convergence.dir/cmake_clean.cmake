file(REMOVE_RECURSE
  "../bench/ablation_regret_convergence"
  "../bench/ablation_regret_convergence.pdb"
  "CMakeFiles/ablation_regret_convergence.dir/ablation_regret_convergence.cpp.o"
  "CMakeFiles/ablation_regret_convergence.dir/ablation_regret_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regret_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
