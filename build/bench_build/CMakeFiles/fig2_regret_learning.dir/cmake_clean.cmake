file(REMOVE_RECURSE
  "../bench/fig2_regret_learning"
  "../bench/fig2_regret_learning.pdb"
  "CMakeFiles/fig2_regret_learning.dir/fig2_regret_learning.cpp.o"
  "CMakeFiles/fig2_regret_learning.dir/fig2_regret_learning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_regret_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
