# Empty compiler generated dependencies file for fig2_regret_learning.
# This may be replaced when dependencies are built.
