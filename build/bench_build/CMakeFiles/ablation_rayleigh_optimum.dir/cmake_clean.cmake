file(REMOVE_RECURSE
  "../bench/ablation_rayleigh_optimum"
  "../bench/ablation_rayleigh_optimum.pdb"
  "CMakeFiles/ablation_rayleigh_optimum.dir/ablation_rayleigh_optimum.cpp.o"
  "CMakeFiles/ablation_rayleigh_optimum.dir/ablation_rayleigh_optimum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rayleigh_optimum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
