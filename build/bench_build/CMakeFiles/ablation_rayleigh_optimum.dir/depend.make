# Empty dependencies file for ablation_rayleigh_optimum.
# This may be replaced when dependencies are built.
