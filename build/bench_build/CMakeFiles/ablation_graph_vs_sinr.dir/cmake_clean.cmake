file(REMOVE_RECURSE
  "../bench/ablation_graph_vs_sinr"
  "../bench/ablation_graph_vs_sinr.pdb"
  "CMakeFiles/ablation_graph_vs_sinr.dir/ablation_graph_vs_sinr.cpp.o"
  "CMakeFiles/ablation_graph_vs_sinr.dir/ablation_graph_vs_sinr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_graph_vs_sinr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
