# Empty compiler generated dependencies file for ablation_graph_vs_sinr.
# This may be replaced when dependencies are built.
