# Empty compiler generated dependencies file for raysched_tests.
# This may be replaced when dependencies are built.
