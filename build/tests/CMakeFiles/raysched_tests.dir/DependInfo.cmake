
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_block_fading.cpp" "tests/CMakeFiles/raysched_tests.dir/test_block_fading.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_block_fading.cpp.o.d"
  "/root/repo/tests/test_capacity_algorithms.cpp" "tests/CMakeFiles/raysched_tests.dir/test_capacity_algorithms.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_capacity_algorithms.cpp.o.d"
  "/root/repo/tests/test_core_deep.cpp" "tests/CMakeFiles/raysched_tests.dir/test_core_deep.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_core_deep.cpp.o.d"
  "/root/repo/tests/test_dynamics_deep.cpp" "tests/CMakeFiles/raysched_tests.dir/test_dynamics_deep.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_dynamics_deep.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/raysched_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/raysched_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_feasibility.cpp" "tests/CMakeFiles/raysched_tests.dir/test_feasibility.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_feasibility.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/raysched_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_flexible_rates.cpp" "tests/CMakeFiles/raysched_tests.dir/test_flexible_rates.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_flexible_rates.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/raysched_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interference_graph.cpp" "tests/CMakeFiles/raysched_tests.dir/test_interference_graph.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_interference_graph.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/raysched_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_latency.cpp" "tests/CMakeFiles/raysched_tests.dir/test_latency.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_latency.cpp.o.d"
  "/root/repo/tests/test_latency_exact.cpp" "tests/CMakeFiles/raysched_tests.dir/test_latency_exact.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_latency_exact.cpp.o.d"
  "/root/repo/tests/test_latency_transform.cpp" "tests/CMakeFiles/raysched_tests.dir/test_latency_transform.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_latency_transform.cpp.o.d"
  "/root/repo/tests/test_learning.cpp" "tests/CMakeFiles/raysched_tests.dir/test_learning.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_learning.cpp.o.d"
  "/root/repo/tests/test_learning_extensions.cpp" "tests/CMakeFiles/raysched_tests.dir/test_learning_extensions.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_learning_extensions.cpp.o.d"
  "/root/repo/tests/test_logstar.cpp" "tests/CMakeFiles/raysched_tests.dir/test_logstar.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_logstar.cpp.o.d"
  "/root/repo/tests/test_metamorphic.cpp" "tests/CMakeFiles/raysched_tests.dir/test_metamorphic.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_metamorphic.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/raysched_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_nakagami.cpp" "tests/CMakeFiles/raysched_tests.dir/test_nakagami.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_nakagami.cpp.o.d"
  "/root/repo/tests/test_online.cpp" "tests/CMakeFiles/raysched_tests.dir/test_online.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_online.cpp.o.d"
  "/root/repo/tests/test_pathloss.cpp" "tests/CMakeFiles/raysched_tests.dir/test_pathloss.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_pathloss.cpp.o.d"
  "/root/repo/tests/test_pipeline_fuzz.cpp" "tests/CMakeFiles/raysched_tests.dir/test_pipeline_fuzz.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_pipeline_fuzz.cpp.o.d"
  "/root/repo/tests/test_probabilistic.cpp" "tests/CMakeFiles/raysched_tests.dir/test_probabilistic.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_probabilistic.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/raysched_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_queueing.cpp" "tests/CMakeFiles/raysched_tests.dir/test_queueing.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_queueing.cpp.o.d"
  "/root/repo/tests/test_rayleigh.cpp" "tests/CMakeFiles/raysched_tests.dir/test_rayleigh.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_rayleigh.cpp.o.d"
  "/root/repo/tests/test_reduction.cpp" "tests/CMakeFiles/raysched_tests.dir/test_reduction.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_reduction.cpp.o.d"
  "/root/repo/tests/test_regression_pinned.cpp" "tests/CMakeFiles/raysched_tests.dir/test_regression_pinned.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_regression_pinned.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/raysched_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/raysched_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_scheduling_deep.cpp" "tests/CMakeFiles/raysched_tests.dir/test_scheduling_deep.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_scheduling_deep.cpp.o.d"
  "/root/repo/tests/test_shadowing.cpp" "tests/CMakeFiles/raysched_tests.dir/test_shadowing.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_shadowing.cpp.o.d"
  "/root/repo/tests/test_simulation_transform.cpp" "tests/CMakeFiles/raysched_tests.dir/test_simulation_transform.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_simulation_transform.cpp.o.d"
  "/root/repo/tests/test_sinr.cpp" "tests/CMakeFiles/raysched_tests.dir/test_sinr.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_sinr.cpp.o.d"
  "/root/repo/tests/test_statistical.cpp" "tests/CMakeFiles/raysched_tests.dir/test_statistical.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_statistical.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/raysched_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_success_probability.cpp" "tests/CMakeFiles/raysched_tests.dir/test_success_probability.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_success_probability.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/raysched_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/raysched_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_transfer.cpp" "tests/CMakeFiles/raysched_tests.dir/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_transfer.cpp.o.d"
  "/root/repo/tests/test_utility.cpp" "tests/CMakeFiles/raysched_tests.dir/test_utility.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_utility.cpp.o.d"
  "/root/repo/tests/test_weighted.cpp" "tests/CMakeFiles/raysched_tests.dir/test_weighted.cpp.o" "gcc" "tests/CMakeFiles/raysched_tests.dir/test_weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raysched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
