# Empty compiler generated dependencies file for raysched.
# This may be replaced when dependencies are built.
