file(REMOVE_RECURSE
  "libraysched.a"
)
