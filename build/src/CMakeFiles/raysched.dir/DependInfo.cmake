
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/capacity.cpp" "src/CMakeFiles/raysched.dir/algorithms/capacity.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/capacity.cpp.o.d"
  "/root/repo/src/algorithms/exact.cpp" "src/CMakeFiles/raysched.dir/algorithms/exact.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/exact.cpp.o.d"
  "/root/repo/src/algorithms/latency.cpp" "src/CMakeFiles/raysched.dir/algorithms/latency.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/latency.cpp.o.d"
  "/root/repo/src/algorithms/multihop.cpp" "src/CMakeFiles/raysched.dir/algorithms/multihop.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/multihop.cpp.o.d"
  "/root/repo/src/algorithms/online.cpp" "src/CMakeFiles/raysched.dir/algorithms/online.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/online.cpp.o.d"
  "/root/repo/src/algorithms/probabilistic.cpp" "src/CMakeFiles/raysched.dir/algorithms/probabilistic.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/probabilistic.cpp.o.d"
  "/root/repo/src/algorithms/queueing.cpp" "src/CMakeFiles/raysched.dir/algorithms/queueing.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/queueing.cpp.o.d"
  "/root/repo/src/algorithms/routing.cpp" "src/CMakeFiles/raysched.dir/algorithms/routing.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/routing.cpp.o.d"
  "/root/repo/src/algorithms/weighted.cpp" "src/CMakeFiles/raysched.dir/algorithms/weighted.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/algorithms/weighted.cpp.o.d"
  "/root/repo/src/core/latency_bounds.cpp" "src/CMakeFiles/raysched.dir/core/latency_bounds.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/core/latency_bounds.cpp.o.d"
  "/root/repo/src/core/latency_exact.cpp" "src/CMakeFiles/raysched.dir/core/latency_exact.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/core/latency_exact.cpp.o.d"
  "/root/repo/src/core/reduction.cpp" "src/CMakeFiles/raysched.dir/core/reduction.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/core/reduction.cpp.o.d"
  "/root/repo/src/core/simulation_transform.cpp" "src/CMakeFiles/raysched.dir/core/simulation_transform.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/core/simulation_transform.cpp.o.d"
  "/root/repo/src/core/success_probability.cpp" "src/CMakeFiles/raysched.dir/core/success_probability.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/core/success_probability.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/CMakeFiles/raysched.dir/core/transfer.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/core/transfer.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/CMakeFiles/raysched.dir/core/utility.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/core/utility.cpp.o.d"
  "/root/repo/src/learning/best_response.cpp" "src/CMakeFiles/raysched.dir/learning/best_response.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/learning/best_response.cpp.o.d"
  "/root/repo/src/learning/capacity_game.cpp" "src/CMakeFiles/raysched.dir/learning/capacity_game.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/learning/capacity_game.cpp.o.d"
  "/root/repo/src/learning/exp3.cpp" "src/CMakeFiles/raysched.dir/learning/exp3.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/learning/exp3.cpp.o.d"
  "/root/repo/src/learning/fictitious_play.cpp" "src/CMakeFiles/raysched.dir/learning/fictitious_play.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/learning/fictitious_play.cpp.o.d"
  "/root/repo/src/learning/no_regret.cpp" "src/CMakeFiles/raysched.dir/learning/no_regret.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/learning/no_regret.cpp.o.d"
  "/root/repo/src/learning/rwm.cpp" "src/CMakeFiles/raysched.dir/learning/rwm.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/learning/rwm.cpp.o.d"
  "/root/repo/src/model/affectance.cpp" "src/CMakeFiles/raysched.dir/model/affectance.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/affectance.cpp.o.d"
  "/root/repo/src/model/block_fading.cpp" "src/CMakeFiles/raysched.dir/model/block_fading.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/block_fading.cpp.o.d"
  "/root/repo/src/model/feasibility.cpp" "src/CMakeFiles/raysched.dir/model/feasibility.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/feasibility.cpp.o.d"
  "/root/repo/src/model/generator.cpp" "src/CMakeFiles/raysched.dir/model/generator.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/generator.cpp.o.d"
  "/root/repo/src/model/interference_graph.cpp" "src/CMakeFiles/raysched.dir/model/interference_graph.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/interference_graph.cpp.o.d"
  "/root/repo/src/model/io.cpp" "src/CMakeFiles/raysched.dir/model/io.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/io.cpp.o.d"
  "/root/repo/src/model/nakagami.cpp" "src/CMakeFiles/raysched.dir/model/nakagami.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/nakagami.cpp.o.d"
  "/root/repo/src/model/network.cpp" "src/CMakeFiles/raysched.dir/model/network.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/network.cpp.o.d"
  "/root/repo/src/model/rayleigh.cpp" "src/CMakeFiles/raysched.dir/model/rayleigh.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/rayleigh.cpp.o.d"
  "/root/repo/src/model/shadowing.cpp" "src/CMakeFiles/raysched.dir/model/shadowing.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/shadowing.cpp.o.d"
  "/root/repo/src/model/sinr.cpp" "src/CMakeFiles/raysched.dir/model/sinr.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/model/sinr.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/raysched.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/thread_pool.cpp" "src/CMakeFiles/raysched.dir/sim/thread_pool.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/sim/thread_pool.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/raysched.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/raysched.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/raysched.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
