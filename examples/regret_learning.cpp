// Example: distributed capacity maximization via no-regret learning
// (Section 6/7): every link runs Randomized Weighted Majority; successes
// converge toward a constant fraction of the non-fading optimum in both
// models.
//
//   $ ./regret_learning --links=50 --rounds=200
#include <iostream>
#include <memory>

#include "raysched.hpp"

using namespace raysched;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 50, "number of links");
  flags.add_int("rounds", 200, "learning rounds");
  flags.add_double("beta", 0.5, "SINR threshold (paper Figure 2 uses 0.5)");
  flags.add_int("seed", 3, "instance seed");
  try {
    flags.parse(argc, argv);
  } catch (const error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  params.min_length = 1.0;
  params.max_length = 100.0;
  auto links = model::random_plane_links(params, rng);
  const model::Network net(std::move(links),
                           model::PowerAssignment::uniform(2.0), 2.1, units::Power(0.0));
  const double beta = flags.get_double("beta");

  algorithms::LocalSearchOptions ls;
  ls.restarts = 2;
  ls.use_swap_moves = net.size() <= 100;
  const auto opt = algorithms::local_search_max_feasible_set(net, beta, ls);
  std::cout << "non-fading OPT (local-search lower bound): "
            << opt.selected.size() << " links\n\n";

  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));
  for (auto model_kind :
       {learning::GameModel::NonFading, learning::GameModel::Rayleigh}) {
    learning::GameOptions opts;
    opts.rounds = rounds;
    opts.beta = beta;
    opts.model = model_kind;
    util::RngStream game_rng =
        rng.derive(static_cast<std::uint64_t>(model_kind));
    const auto result = learning::run_capacity_game(
        net, opts, [] { return std::make_unique<learning::RwmLearner>(); },
        game_rng);

    std::cout << (model_kind == learning::GameModel::Rayleigh ? "RAYLEIGH"
                                                              : "NON-FADING")
              << " model\n";
    // Print the per-round trace in blocks of 10 (mean per block).
    util::Table table({"rounds", "mean_successes", "mean_transmitters"});
    const std::size_t block = std::max<std::size_t>(1, rounds / 10);
    for (std::size_t start = 0; start < rounds; start += block) {
      const std::size_t end = std::min(rounds, start + block);
      double s = 0.0, f = 0.0;
      for (std::size_t t = start; t < end; ++t) {
        s += result.successes_per_round[t];
        f += result.transmitters_per_round[t];
      }
      const double d = static_cast<double>(end - start);
      table.add_row({std::string(std::to_string(start) + ".." +
                                 std::to_string(end - 1)),
                     s / d, f / d});
    }
    table.print_text(std::cout);
    double max_regret = 0.0;
    for (double r : result.regret_per_link) {
      max_regret = std::max(max_regret, r / static_cast<double>(rounds));
    }
    std::cout << "average successes/round: " << result.average_successes
              << " | max per-round regret: " << max_regret << "\n\n";
  }
  std::cout << "expected: both models converge near the non-fading OPT, the "
               "Rayleigh curve staying slightly below and noisier "
               "(Figure 2).\n";
  return 0;
}
