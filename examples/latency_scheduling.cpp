// Example: latency minimization — serve every link at least once.
//
// Runs the repeated-capacity scheduler and the ALOHA protocol in both
// propagation models (Rayleigh uses the Section-4 4x repetition), plus a
// multi-hop demo over a chain.
//
//   $ ./latency_scheduling --links=40 --beta=2.5
#include <iostream>

#include "raysched.hpp"

using namespace raysched;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 40, "number of links");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_int("seed", 11, "instance seed");
  try {
    flags.parse(argc, argv);
  } catch (const error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  auto links = model::random_plane_links(params, rng);
  const model::Network net(std::move(links),
                           model::PowerAssignment::uniform(2.0), 2.2, units::Power(4e-7));
  const double beta = flags.get_double("beta");

  util::Table table({"scheduler", "model", "slots", "completed"});
  for (auto prop : {algorithms::Propagation::NonFading,
                    algorithms::Propagation::Rayleigh}) {
    const std::string model_name =
        prop == algorithms::Propagation::Rayleigh ? "rayleigh" : "non-fading";
    {
      util::RngStream r = rng.derive(1, static_cast<std::uint64_t>(prop));
      const auto result =
          algorithms::repeated_capacity_schedule(net, beta, prop, r);
      table.add_row({std::string("repeated-capacity"), model_name,
                     static_cast<long long>(result.slots),
                     std::string(result.completed ? "yes" : "no")});
    }
    {
      util::RngStream r = rng.derive(2, static_cast<std::uint64_t>(prop));
      const auto result = algorithms::aloha_schedule(net, beta, prop, r);
      table.add_row({std::string("aloha (fixed q=1/4)"), model_name,
                     static_cast<long long>(result.slots),
                     std::string(result.completed ? "yes" : "no")});
    }
    {
      util::RngStream r = rng.derive(3, static_cast<std::uint64_t>(prop));
      algorithms::AlohaOptions opts;
      opts.adaptive = true;
      const auto result = algorithms::aloha_schedule(net, beta, prop, r, opts);
      table.add_row({std::string("aloha (adaptive)"), model_name,
                     static_cast<long long>(result.slots),
                     std::string(result.completed ? "yes" : "no")});
    }
  }
  std::cout << "single-hop latency on " << flags.get_int("links")
            << " links, beta=" << beta << "\n\n";
  table.print_text(std::cout);

  // Multi-hop: route 4 packets over a shared 6-hop chain.
  auto chain = model::chain_links(6, 30.0);
  const model::Network chain_net(std::move(chain),
                                 model::PowerAssignment::uniform(2.0), 2.2,
                                 units::Power(1e-7));
  std::vector<algorithms::MultihopRequest> requests = {
      {{0, 1, 2, 3, 4, 5}}, {{2, 3, 4, 5}}, {{0, 1, 2}}, {{4, 5}}};
  util::RngStream r = rng.derive(4);
  const auto mh = algorithms::schedule_multihop(
      chain_net, requests, 2.0, algorithms::Propagation::Rayleigh, r);
  std::cout << "\nmulti-hop (6-hop chain, 4 requests, Rayleigh): "
            << mh.slots << " slots, completed=" << (mh.completed ? "yes" : "no")
            << "\n";
  for (std::size_t q = 0; q < requests.size(); ++q) {
    std::cout << "  request " << q << " (" << requests[q].hops.size()
              << " hops) done at slot " << mh.completion_slot[q] << "\n";
  }
  return 0;
}
