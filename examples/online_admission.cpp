// Example: online admission control under churn.
//
// Links request spectrum and leave over time; the controller admits a
// request iff the whole active set stays SINR-feasible — so at every
// instant, Lemma 2's certificate holds: the expected number of
// Rayleigh-successful transmissions is at least |active| / e.
//
//   $ ./online_admission --links=40 --steps=30
#include <iomanip>
#include <iostream>

#include "raysched.hpp"

using namespace raysched;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 40, "number of links in the universe");
  flags.add_int("steps", 30, "churn events to display");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_int("seed", 19, "seed");
  try {
    flags.parse(argc, argv);
  } catch (const error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  auto links = model::random_plane_links(params, rng);
  const model::Network net(std::move(links),
                           model::PowerAssignment::uniform(2.0), 2.2, units::Power(4e-7));
  const double beta = flags.get_double("beta");

  algorithms::OnlineScheduler sched(net, beta);
  util::RngStream churn = rng.derive(1);

  std::cout << "online admission at beta=" << beta << " over "
            << net.size() << " links\n\n";
  util::Table table({"event", "link", "outcome", "active", "waiting",
                     "E[rayleigh]"});
  const auto steps = static_cast<std::size_t>(flags.get_int("steps"));
  for (std::size_t step = 0; step < steps; ++step) {
    const model::LinkId i = churn.uniform_index(net.size());
    std::string event, outcome;
    if (churn.bernoulli(0.65)) {
      event = "arrive";
      outcome = sched.arrive(i) ? "admitted" : "queued";
    } else {
      event = "depart";
      const auto readmitted = sched.depart(i);
      outcome = readmitted.empty()
                    ? "left"
                    : "left, +" + std::to_string(readmitted.size()) +
                          " readmitted";
    }
    table.add_row({event, static_cast<long long>(i), outcome,
                   static_cast<long long>(sched.active().size()),
                   static_cast<long long>(sched.waiting().size()),
                   sched.expected_rayleigh_successes()});
  }
  table.print_text(std::cout);

  const double certificate =
      static_cast<double>(sched.active().size()) / std::exp(1.0);
  std::cout << "\nfinal state: " << sched.active().size() << " active, "
            << sched.waiting().size() << " waiting\n"
            << "Lemma-2 certificate: E[rayleigh successes] = "
            << sched.expected_rayleigh_successes() << " >= |active|/e = "
            << certificate << "\n"
            << "feasibility invariant holds: "
            << (sched.invariant_holds() ? "yes" : "NO") << "\n";
  return 0;
}
