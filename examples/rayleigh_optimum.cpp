// Example: the Rayleigh-fading optimum (Section 5) hands-on.
//
// The Rayleigh optimum ranges over transmission-probability assignments
// q in [0,1]^n. The expected capacity is multilinear in q, so a 0/1 vertex
// attains the optimum — coordinate ascent finds a 1-opt vertex, gradient
// ascent explores the interior, and both are compared against the
// non-fading optimum and its Lemma-2 transfer. Theorem 2's simulation then
// bounds the Rayleigh optimum by O(log* n) non-fading slots.
//
//   $ ./rayleigh_optimum --links=25
#include <cmath>
#include <iostream>

#include "raysched.hpp"

using namespace raysched;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 25, "number of links");
  flags.add_double("beta", 2.5, "SINR threshold");
  flags.add_int("seed", 17, "instance seed");
  try {
    flags.parse(argc, argv);
  } catch (const error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  auto links = model::random_plane_links(params, rng);
  const model::Network net(std::move(links),
                           model::PowerAssignment::uniform(2.0), 2.2, units::Power(4e-7));
  const double beta = flags.get_double("beta");

  // Non-fading optimum (certified lower bound) and its Lemma-2 transfer.
  algorithms::LocalSearchOptions ls;
  ls.restarts = 4;
  const auto nf_opt = algorithms::local_search_max_feasible_set(net, beta, ls);
  const double transferred =
      model::expected_successes_rayleigh(net, nf_opt.selected, units::Threshold(beta));

  // Rayleigh optimum by coordinate ascent over vertices.
  algorithms::CoordinateAscentOptions ca;
  ca.restarts = 4;
  const auto vertex = algorithms::maximize_capacity_coordinate_ascent(
      net, beta, ca);
  std::size_t vertex_links = 0;
  for (double v : vertex.q) vertex_links += v > 0.5 ? 1 : 0;

  // Interior search from the uniform point, for comparison.
  const auto interior = algorithms::maximize_capacity_gradient_ascent(
      net, beta, std::vector<double>(net.size(), 0.5));

  util::Table table({"quantity", "value"});
  table.add_row({std::string("non-fading OPT (LS lower bound)"),
                 static_cast<double>(nf_opt.selected.size())});
  table.add_row({std::string("its E[Rayleigh successes] (Lemma 2)"),
                 transferred});
  table.add_row({std::string("Rayleigh OPT, coordinate ascent (vertex)"),
                 vertex.value});
  table.add_row({std::string("  links transmitting in that vertex"),
                 static_cast<double>(vertex_links)});
  table.add_row({std::string("Rayleigh value, gradient ascent (interior)"),
                 interior.value});
  table.add_row({std::string("ratio Rayleigh-OPT / non-fading-OPT"),
                 vertex.value / static_cast<double>(nf_opt.selected.size())});
  table.print_text(std::cout);

  // Theorem 2: simulate the Rayleigh-optimal q with non-fading slots.
  const auto schedule = core::build_simulation_schedule(net, units::probabilities(vertex.q));
  util::RngStream sim_rng = rng.derive(1);
  const double best_slot_utility = core::simulation_expected_best_utility_mc(
      net, schedule, core::Utility::binary(units::Threshold(beta)), 400, sim_rng);
  std::cout << "\nTheorem 2 simulation of the Rayleigh-optimal q: "
            << schedule.levels.size() << " levels x 19 = "
            << schedule.total_slots() << " non-fading slots;\n"
            << "E[best-slot utility] = " << best_slot_utility
            << " (>= Rayleigh OPT / 8 = " << vertex.value / 8.0
            << " per the proof)\n";
  std::cout << "\ntakeaway: the Rayleigh optimum sits close to (here: below) "
               "the non-fading optimum, exactly as Theorem 2 predicts "
               "within O(log* n).\n";
  return 0;
}
