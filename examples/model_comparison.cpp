// Example: a guided tour of the Rayleigh vs non-fading relationship — the
// paper's analytical pillars demonstrated numerically on one instance.
//
//   1. Theorem 1 closed form vs Lemma 1 bounds for one link.
//   2. The "smoothed curve" effect: success vs transmission probability.
//   3. Lemma 2: 1/e transfer of a feasible set.
//   4. Theorem 2: simulating a Rayleigh slot with O(log* n) non-fading slots.
//
//   $ ./model_comparison --links=30
#include <cmath>
#include <iostream>

#include "raysched.hpp"

using namespace raysched;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 30, "number of links");
  flags.add_int("seed", 5, "instance seed");
  try {
    flags.parse(argc, argv);
  } catch (const error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  auto links = model::random_plane_links(params, rng);
  const model::Network net(std::move(links),
                           model::PowerAssignment::uniform(2.0), 2.2, units::Power(4e-7));
  const double beta = 2.5;

  // 1. Theorem 1 and Lemma 1 for link 0 at q = 1/2 everywhere.
  std::vector<double> q(net.size(), 0.5);
  std::cout << "== Theorem 1 & Lemma 1 (link 0, all q_i = 0.5, beta = " << beta
            << ") ==\n"
            << "  lower bound: "
            << core::rayleigh_success_lower_bound(net, units::probabilities(q), 0, units::Threshold(beta)).value() << "\n"
            << "  exact Q_0:   "
            << core::rayleigh_success_probability(net, units::probabilities(q), 0, units::Threshold(beta)).value() << "\n"
            << "  upper bound: "
            << core::rayleigh_success_upper_bound(net, units::probabilities(q), 0, units::Threshold(beta)).value() << "\n\n";

  // 2. Smoothed-curve effect.
  std::cout << "== expected successes vs q (the Figure-1 shape) ==\n";
  util::Table sweep({"q", "nonfading(MC)", "rayleigh(exact)"});
  util::RngStream mc = rng.derive(1);
  for (double qq : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    std::vector<double> probs(net.size(), qq);
    sweep.add_row({qq,
                   core::expected_nonfading_successes_mc(net, units::probabilities(probs), units::Threshold(beta),
                                                         400, mc),
                   core::expected_rayleigh_successes(net, units::probabilities(probs), units::Threshold(beta))});
  }
  sweep.print_text(std::cout);

  // 3. Lemma 2 transfer.
  const auto greedy = algorithms::greedy_capacity(net, beta);
  util::RngStream fading = rng.derive(2);
  const auto transfer = core::transfer_capacity_solution(
      net, greedy.selected, core::Utility::binary(units::Threshold(beta)), 1, fading);
  std::cout << "\n== Lemma 2 transfer of the greedy solution ==\n"
            << "  non-fading successes: " << transfer.nonfading_value << "\n"
            << "  E[Rayleigh successes]: " << transfer.rayleigh_value << "\n"
            << "  ratio: " << transfer.ratio() << "  (bound: 1/e = "
            << 1.0 / std::exp(1.0) << ")\n";

  // 4. Theorem 2 simulation.
  std::vector<double> ones(net.size(), 1.0);
  const auto schedule = core::build_simulation_schedule(net, units::probabilities(ones));
  util::RngStream sim_rng = rng.derive(3);
  const double best = core::simulation_expected_best_utility_mc(
      net, schedule, core::Utility::binary(units::Threshold(beta)), 300, sim_rng);
  std::cout << "\n== Theorem 2 simulation (q_i = 1) ==\n"
            << "  levels: " << schedule.levels.size() << "  slots: "
            << schedule.total_slots() << "  (log* " << net.size()
            << " levels x 19)\n"
            << "  E[best-slot non-fading utility]: " << best << "\n"
            << "  E[Rayleigh utility of original q]: "
            << core::expected_rayleigh_successes(net, units::probabilities(ones), units::Threshold(beta)) << "\n"
            << "  (Theorem 2: the former is >= 1/8 of the latter)\n";
  return 0;
}
