// Quickstart: build a network, run a non-fading capacity algorithm, and
// transfer the solution to the Rayleigh-fading model (Lemma 2).
//
//   $ ./quickstart
//
// This walks through the core API in ~60 lines.
#include <iostream>

#include "raysched.hpp"

int main() {
  using namespace raysched;

  // 1. Generate a random instance like the paper's Figure 1: 100 links on a
  //    1000x1000 plane, link lengths in [20, 40].
  util::RngStream rng(/*seed=*/2012);
  model::RandomPlaneParams params;
  params.num_links = 100;
  auto links = model::random_plane_links(params, rng);

  // 2. Fix the physical model: uniform power 2, path loss alpha = 2.2,
  //    ambient noise 4e-7. The Network precomputes the mean-gain matrix
  //    S̄(j,i) = p_j / d(s_j, r_i)^alpha.
  const model::Network net(std::move(links),
                           model::PowerAssignment::uniform(2.0),
                           /*alpha=*/2.2, units::Power(/*noise=*/4e-7));

  // 3. Maximize capacity in the non-fading model at SINR threshold 2.5.
  const double beta = 2.5;
  const auto solution = algorithms::greedy_capacity(net, beta);
  std::cout << "non-fading greedy selected " << solution.selected.size()
            << " of " << net.size() << " links (all SINR >= " << beta
            << ")\n";

  // 4. Transfer to Rayleigh fading: transmit the same set; gains become
  //    exponential random variables with the same means. Lemma 2 promises
  //    at least a 1/e fraction of the utility in expectation.
  util::RngStream fading = rng.derive(/*tag=*/1);
  const auto transfer = core::transfer_capacity_solution(
      net, solution.selected, core::Utility::binary(units::Threshold(beta)), /*trials=*/1,
      fading);
  std::cout << "expected Rayleigh successes: " << transfer.rayleigh_value
            << " (ratio " << transfer.ratio() << ", Lemma 2 bound "
            << 1.0 / std::exp(1.0) << ")\n";

  // 5. Sample one actual fading slot to see the stochastic model in action.
  util::RngStream slot = rng.derive(/*tag=*/2);
  const auto successes =
      model::count_successes_rayleigh(net, solution.selected, units::Threshold(beta), slot);
  std::cout << "one sampled Rayleigh slot: " << successes << "/"
            << solution.selected.size() << " links succeeded\n";
  return 0;
}
