// Example: end-to-end multi-hop routing and scheduling (Section 4's
// multi-hop transformation on top of the relay-routing substrate).
//
// Relays are placed on a grid; end-to-end requests are routed along
// minimum-hop paths on the unit-disk connectivity graph; the induced link
// network is scheduled hop by hop in both propagation models.
//
//   $ ./multihop_routing --rows=4 --cols=4 --packets=6
#include <iostream>

#include "raysched.hpp"

using namespace raysched;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("rows", 4, "relay grid rows");
  flags.add_int("cols", 4, "relay grid columns");
  flags.add_int("packets", 6, "number of end-to-end requests");
  flags.add_double("spacing", 60.0, "relay grid spacing");
  flags.add_double("range", 65.0, "communication range (> spacing connects)");
  flags.add_double("beta", 1.5, "SINR threshold");
  flags.add_int("seed", 13, "seed for request endpoints");
  try {
    flags.parse(argc, argv);
  } catch (const error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  // Relay positions on a rows x cols grid.
  const auto rows = static_cast<std::size_t>(flags.get_int("rows"));
  const auto cols = static_cast<std::size_t>(flags.get_int("cols"));
  const double spacing = flags.get_double("spacing");
  std::vector<model::Point> relays;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      relays.push_back(model::Point{static_cast<double>(c) * spacing,
                                    static_cast<double>(r) * spacing});
    }
  }

  // Random distinct end-to-end requests.
  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<algorithms::RouteRequest> requests;
  const auto packets = static_cast<std::size_t>(flags.get_int("packets"));
  while (requests.size() < packets) {
    const std::size_t a = rng.uniform_index(relays.size());
    const std::size_t b = rng.uniform_index(relays.size());
    if (a != b) requests.push_back({a, b});
  }

  const auto routed = algorithms::route_requests(
      relays, flags.get_double("range"), requests,
      model::PowerAssignment::uniform(2.0), /*alpha=*/2.5, /*noise=*/1e-6);

  std::cout << "routed " << packets << " requests over " << relays.size()
            << " relays -> " << routed.network.size()
            << " distinct directed links\n";
  for (std::size_t q = 0; q < requests.size(); ++q) {
    std::cout << "  request " << q << ": relay " << requests[q].source
              << " -> " << requests[q].destination << " in "
              << routed.requests[q].hops.size() << " hops\n";
  }

  const double beta = flags.get_double("beta");
  util::Table table({"model", "slots", "completed"});
  for (auto prop : {algorithms::Propagation::NonFading,
                    algorithms::Propagation::Rayleigh}) {
    util::RngStream sched_rng = rng.derive(static_cast<std::uint64_t>(prop));
    const auto result = algorithms::schedule_multihop(
        routed.network, routed.requests, beta, prop, sched_rng);
    table.add_row({std::string(prop == algorithms::Propagation::Rayleigh
                                   ? "rayleigh (4x steps)"
                                   : "non-fading"),
                   static_cast<long long>(result.slots),
                   std::string(result.completed ? "yes" : "no")});
  }
  std::cout << "\n";
  table.print_text(std::cout);
  std::cout << "\nper Section 4, the Rayleigh schedule is a concatenation of "
               "transformed single-hop schedules: only a constant factor "
               "longer.\n";
  return 0;
}
