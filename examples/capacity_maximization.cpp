// Example: capacity maximization across power assignments and utilities.
//
// Compares greedy (uniform power), greedy (square-root power), power
// control, and the flexible-rate sweep for Shannon utility on one instance,
// reporting non-fading value and the exact expected Rayleigh value of each
// solution.
//
//   $ ./capacity_maximization --links=80 --beta=2.5 --seed=7
#include <iostream>

#include "raysched.hpp"

using namespace raysched;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("links", 80, "number of links");
  flags.add_double("beta", 2.5, "SINR threshold for binary capacity");
  flags.add_int("seed", 7, "instance seed");
  try {
    flags.parse(argc, argv);
  } catch (const error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }

  util::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  model::RandomPlaneParams params;
  params.num_links = static_cast<std::size_t>(flags.get_int("links"));
  const auto links = model::random_plane_links(params, rng);
  const double beta = flags.get_double("beta");

  const model::Network uniform_net(links, model::PowerAssignment::uniform(2.0),
                                   2.2, units::Power(4e-7));
  const model::Network sqrt_net(links, model::PowerAssignment::square_root(2.0),
                                2.2, units::Power(4e-7));

  util::Table table({"algorithm", "selected", "nonfading_value",
                     "E[rayleigh_value]"});

  // Binary capacity with three algorithms.
  {
    const auto g = algorithms::greedy_capacity(uniform_net, beta);
    table.add_row({std::string("greedy uniform"),
                   static_cast<long long>(g.selected.size()), g.value,
                   model::expected_successes_rayleigh(uniform_net, g.selected,
                                                      units::Threshold(beta))});
  }
  {
    const auto g = algorithms::greedy_capacity(sqrt_net, beta);
    table.add_row({std::string("greedy sqrt-power"),
                   static_cast<long long>(g.selected.size()), g.value,
                   model::expected_successes_rayleigh(sqrt_net, g.selected,
                                                      units::Threshold(beta))});
  }
  {
    const auto p = algorithms::power_control_capacity(uniform_net, beta);
    double rayleigh = 0.0;
    if (!p.selected.empty()) {
      model::Network powered = uniform_net;
      powered.set_powers(*p.powers);
      rayleigh =
          model::expected_successes_rayleigh(powered, p.selected, units::Threshold(beta));
    }
    table.add_row({std::string("power control"),
                   static_cast<long long>(p.selected.size()), p.value,
                   rayleigh});
  }

  // Shannon (flexible-rate) capacity: value is total log(1+SINR).
  {
    const core::Utility shannon = core::Utility::shannon();
    const auto f =
        algorithms::flexible_rate_capacity(uniform_net, shannon, 0.5, 16.0, 10);
    util::RngStream mc = rng.derive(0xC0FFEE);
    const double rayleigh = core::expected_rayleigh_utility_mc(
        uniform_net, f.selected, shannon, 2000, mc);
    table.add_row({std::string("flexible-rate (Shannon)"),
                   static_cast<long long>(f.selected.size()), f.value,
                   rayleigh});
  }

  // Per-link rate classes: each selected link carries its own threshold.
  {
    const core::Utility shannon = core::Utility::shannon();
    const auto f = algorithms::flexible_rate_capacity_per_link(
        uniform_net, shannon, 0.5, 16.0, 10);
    util::RngStream mc = rng.derive(0xC0FFEF);
    const double rayleigh = core::expected_rayleigh_utility_mc(
        uniform_net, f.selected, shannon, 2000, mc);
    table.add_row({std::string("per-link rates (Shannon)"),
                   static_cast<long long>(f.selected.size()), f.value,
                   rayleigh});
  }

  std::cout << "capacity maximization on " << flags.get_int("links")
            << " links, beta=" << beta << "\n\n";
  table.print_text(std::cout);
  std::cout << "\nLemma 2: each E[rayleigh_value] is >= nonfading_value / e "
               "(= x 0.368).\n";
  return 0;
}
